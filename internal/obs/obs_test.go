package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilObserverIsSafe: every method of the nil Observer must be
// callable, and a span started on it still measures time.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.CacheHit()
	o.CacheMiss()
	sp := o.Start("stage", "app", "")
	time.Sleep(time.Millisecond)
	if d := sp.End(nil, false); d <= 0 {
		t.Fatalf("nil-observer span measured %v, want > 0", d)
	}
	if snap := o.Snapshot(); snap != nil {
		t.Fatalf("nil observer snapshot = %+v, want nil", snap)
	}
	if got := o.Snapshot().Render(); !strings.Contains(got, "no metrics") {
		t.Fatalf("nil snapshot renders %q", got)
	}
}

// TestCountersAndQuantiles: runs, errors, panics, and the latency
// quantiles reflect what was recorded.
func TestCountersAndQuantiles(t *testing.T) {
	o := New()
	o.record("s", 100*time.Microsecond, nil, false)
	o.record("s", 200*time.Microsecond, nil, false)
	o.record("s", 300*time.Microsecond, errors.New("boom"), false)
	o.record("s", 10*time.Millisecond, errors.New("bang"), true)
	snap := o.Snapshot()
	st, ok := snap.Stage("s")
	if !ok {
		t.Fatal("stage s missing from snapshot")
	}
	if st.Runs != 4 || st.Errors != 2 || st.Panics != 1 {
		t.Fatalf("counters = %+v", st)
	}
	if st.Max != 10*time.Millisecond {
		t.Fatalf("max = %v", st.Max)
	}
	if st.Total != 10*time.Millisecond+600*time.Microsecond {
		t.Fatalf("total = %v", st.Total)
	}
	// p50 of {100µs,200µs,300µs,10ms} lands in the 256–512µs bucket at
	// the latest; p95 must reach the max sample's bucket.
	if st.P50 > 512*time.Microsecond {
		t.Fatalf("p50 = %v", st.P50)
	}
	if st.P95 < time.Millisecond || st.P95 > st.Max {
		t.Fatalf("p95 = %v (max %v)", st.P95, st.Max)
	}
	if mean := st.Mean(); mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
}

// TestQuantileClampedToMax: bucket upper bounds never exceed the exact
// max in a snapshot.
func TestQuantileClampedToMax(t *testing.T) {
	o := New()
	for i := 0; i < 100; i++ {
		o.record("s", 130*time.Microsecond, nil, false)
	}
	st, _ := o.Snapshot().Stage("s")
	if st.P50 > st.Max || st.P95 > st.Max {
		t.Fatalf("quantiles exceed max: p50=%v p95=%v max=%v", st.P50, st.P95, st.Max)
	}
}

// TestRegistrationOrder: snapshot stages come back in first-use order,
// not map order.
func TestRegistrationOrder(t *testing.T) {
	o := New()
	for _, name := range []string{"extract", "policy", "static", "detect"} {
		o.record(name, time.Microsecond, nil, false)
	}
	snap := o.Snapshot()
	var got []string
	for _, st := range snap.Stages {
		got = append(got, st.Stage)
	}
	want := "extract policy static detect"
	if strings.Join(got, " ") != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestConcurrentRecording: many goroutines hammering one Observer must
// lose no events (run under -race in CI).
func TestConcurrentRecording(t *testing.T) {
	o := New(WithSink(NewJSONLSink(&bytes.Buffer{})))
	const goroutines, per = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := o.Start("shared", "app", "")
				sp.End(nil, false)
				if i%2 == 0 {
					o.CacheHit()
				} else {
					o.CacheMiss()
				}
			}
		}(g)
	}
	wg.Wait()
	st, _ := o.Snapshot().Stage("shared")
	if st.Runs != goroutines*per {
		t.Fatalf("runs = %d, want %d", st.Runs, goroutines*per)
	}
	snap := o.Snapshot()
	if snap.CacheHits != goroutines*per/2 || snap.CacheMisses != goroutines*per/2 {
		t.Fatalf("cache counters = %d/%d", snap.CacheHits, snap.CacheMisses)
	}
}

// TestJSONLSink: records come out one valid JSON object per line with
// the span fields intact.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(WithSink(sink))
	sp := o.Start("policy-nlp", "com.example.app", "")
	sp.End(errors.New("bad sentence"), true)
	sp = o.Start("detect-incomplete", "com.example.app", "detectors")
	sp.End(nil, false)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []SpanRecord
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Span != "policy-nlp" || recs[0].Err != "bad sentence" || !recs[0].Recovered {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[1].Parent != "detectors" || recs[1].App != "com.example.app" {
		t.Fatalf("second record = %+v", recs[1])
	}
}

// TestRenderExposition: the text table lists every stage with its
// counts and the cache line.
func TestRenderExposition(t *testing.T) {
	o := New()
	o.record("html-extract", 50*time.Microsecond, nil, false)
	o.record("taint", 2*time.Millisecond, errors.New("x"), false)
	o.CacheHit()
	o.CacheMiss()
	out := o.Snapshot().Render()
	for _, want := range []string{"html-extract", "taint", "p50", "p95", "lib-policy cache: 1 hits, 1 misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestBucketBounds: the bucket mapping is monotonic and its upper
// bounds bracket the sample.
func TestBucketBounds(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, time.Microsecond, 10 * time.Microsecond,
		time.Millisecond, 100 * time.Millisecond, 10 * time.Second} {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucket not monotonic at %v", d)
		}
		prev = b
		if up := bucketUpper(b); up < d && b < histBuckets-1 {
			t.Fatalf("bucketUpper(%d) = %v < sample %v", b, up, d)
		}
	}
}

// TestMaxCounter: MaxCounter converges on the maximum observed value
// under concurrent racing publishers, never regressing, and is
// nil-safe like every other Observer method.
func TestMaxCounter(t *testing.T) {
	var nilObs *Observer
	nilObs.MaxCounter("hwm", 5) // must not panic

	o := New()
	o.MaxCounter("hwm", 7)
	o.MaxCounter("hwm", 3) // lower: no regression
	if v, ok := o.Snapshot().Counter("hwm"); !ok || v != 7 {
		t.Fatalf("hwm = %d (ok=%v), want 7", v, ok)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.MaxCounter("race-hwm", int64(w*1000+i))
			}
		}()
	}
	wg.Wait()
	if v, _ := o.Snapshot().Counter("race-hwm"); v != 7999 {
		t.Fatalf("race-hwm = %d, want 7999", v)
	}
}
