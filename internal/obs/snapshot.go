package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageSnapshot is the frozen metrics of one stage.
type StageSnapshot struct {
	Stage  string
	Runs   int64
	Errors int64
	// Panics counts errors recovered from panics (a subset of Errors).
	Panics int64
	// Total is the summed duration of all runs.
	Total time.Duration
	// P50 and P95 are approximate (log-bucket upper bounds); Max is
	// exact.
	P50 time.Duration
	P95 time.Duration
	Max time.Duration
}

// Mean is the average duration per run.
func (s StageSnapshot) Mean() time.Duration {
	if s.Runs == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Runs)
}

// CounterSnapshot is one frozen named counter.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// Snapshot is a point-in-time copy of an Observer's metrics. Stages
// appear in first-registration order, which tracks pipeline order;
// Counters likewise.
type Snapshot struct {
	Stages      []StageSnapshot
	CacheHits   int64
	CacheMisses int64
	Counters    []CounterSnapshot
}

// Snapshot freezes the Observer's counters. It is safe to call while
// workers are still recording; each counter is read atomically. A nil
// Observer yields a nil Snapshot.
func (o *Observer) Snapshot() *Snapshot {
	if o == nil {
		return nil
	}
	type seqStage struct {
		seq int64
		st  StageSnapshot
	}
	var rows []seqStage
	o.stages.Range(func(k, v any) bool {
		m := v.(*stageMetrics)
		st := StageSnapshot{
			Stage:  k.(string),
			Runs:   m.runs.Load(),
			Errors: m.errors.Load(),
			Panics: m.panics.Load(),
			Total:  time.Duration(m.totalNs.Load()),
			Max:    time.Duration(m.maxNs.Load()),
		}
		var counts [histBuckets]int64
		var n int64
		for i := range counts {
			counts[i] = m.buckets[i].Load()
			n += counts[i]
		}
		st.P50 = quantile(counts[:], n, 0.50)
		st.P95 = quantile(counts[:], n, 0.95)
		if st.Max < st.P95 {
			// Quantiles are bucket upper bounds and can exceed the exact
			// max; clamp so the table never reads p95 > max.
			st.P95 = st.Max
		}
		if st.Max < st.P50 {
			st.P50 = st.Max
		}
		rows = append(rows, seqStage{seq: m.seq, st: st})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	snap := &Snapshot{
		CacheHits:   o.cacheHits.Load(),
		CacheMisses: o.cacheMisses.Load(),
	}
	for _, r := range rows {
		snap.Stages = append(snap.Stages, r.st)
	}
	type seqCounter struct {
		seq int64
		c   CounterSnapshot
	}
	var cs []seqCounter
	o.counters.Range(func(k, v any) bool {
		cell := v.(*counterCell)
		cs = append(cs, seqCounter{seq: cell.seq,
			c: CounterSnapshot{Name: k.(string), Value: cell.val.Load()}})
		return true
	})
	sort.Slice(cs, func(i, j int) bool { return cs[i].seq < cs[j].seq })
	for _, c := range cs {
		snap.Counters = append(snap.Counters, c.c)
	}
	return snap
}

// quantile reads the p-quantile out of the log-bucket histogram,
// returning the upper bound of the bucket holding the p*n-th sample.
func quantile(counts []int64, n int64, p float64) time.Duration {
	if n == 0 {
		return 0
	}
	rank := int64(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(counts) - 1)
}

// Stage returns the snapshot row for the named stage, if present.
func (s *Snapshot) Stage(name string) (StageSnapshot, bool) {
	if s == nil {
		return StageSnapshot{}, false
	}
	for _, st := range s.Stages {
		if st.Stage == name {
			return st, true
		}
	}
	return StageSnapshot{}, false
}

// TotalBusy sums every stage's total duration — the aggregate busy
// time across all workers (compare against wall-clock × workers).
func (s *Snapshot) TotalBusy() time.Duration {
	if s == nil {
		return 0
	}
	var t time.Duration
	for _, st := range s.Stages {
		t += st.Total
	}
	return t
}

// Render prints the snapshot as an aligned text table (the -metrics
// exposition format).
func (s *Snapshot) Render() string {
	if s == nil {
		return "(no metrics collected)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %6s %6s %10s %10s %10s %12s\n",
		"stage", "runs", "errs", "panics", "p50", "p95", "max", "total")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "%-20s %8d %6d %6d %10s %10s %10s %12s\n",
			st.Stage, st.Runs, st.Errors, st.Panics,
			round(st.P50), round(st.P95), round(st.Max), round(st.Total))
	}
	fmt.Fprintf(&b, "busy time across stages: %s\n", round(s.TotalBusy()))
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&b, "lib-policy cache: %d hits, %d misses (%.1f%% hit rate)\n",
			s.CacheHits, s.CacheMisses,
			100*float64(s.CacheHits)/float64(s.CacheHits+s.CacheMisses))
	}
	if len(s.Counters) > 0 {
		b.WriteString("run counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-28s %12d\n", c.Name, c.Value)
		}
	}
	return b.String()
}

// Counter returns the value of the named counter, if present.
func (s *Snapshot) Counter(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// round trims durations to a readable precision for the table.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}
