// Package obs is the pipeline's observability layer: lightweight spans
// around every stage and detector, lock-free per-stage metrics
// (run/error/panic counters plus a log-bucketed latency histogram), and
// an optional trace sink that records every span as JSON Lines.
//
// The package is built to sit inside the parallel corpus runner:
//
//   - A nil *Observer is fully usable — every method no-ops — so the
//     un-instrumented path costs one monotonic clock read per span and
//     nothing else (benchmarked in bench_test.go).
//   - All counters are atomics and the stage registry is a sync.Map,
//     so any number of worker goroutines may share one Observer.
//   - Sinks serialize behind their own mutex; the hot path never
//     allocates unless a sink is attached.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Observer collects metrics for one run. Construct with New; the nil
// Observer is valid and records nothing.
type Observer struct {
	stages  sync.Map // string -> *stageMetrics
	nextSeq atomic.Int64
	sink    Sink

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// counters are free-form named totals (ESA cache hits, vector-pool
	// allocations, ...) folded into the snapshot exposition.
	counters       sync.Map // string -> *counterCell
	nextCounterSeq atomic.Int64
}

// counterCell is one named counter; seq fixes exposition order.
type counterCell struct {
	seq int64
	val atomic.Int64
}

// Option configures an Observer.
type Option func(*Observer)

// WithSink attaches a trace sink; every ended span is emitted to it.
func WithSink(s Sink) Option {
	return func(o *Observer) { o.sink = s }
}

// New builds an Observer.
func New(opts ...Option) *Observer {
	o := &Observer{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// histBuckets is the number of log2 latency buckets. Bucket i holds
// durations whose microsecond count has bit-length i, i.e. [2^(i-1),
// 2^i) µs; 48 buckets cover far beyond any real stage latency.
const histBuckets = 48

// stageMetrics is the per-stage accumulator. All fields are atomics so
// concurrent workers can record without locks.
type stageMetrics struct {
	seq     int64 // registration order, for stable snapshot ordering
	runs    atomic.Int64
	errors  atomic.Int64
	panics  atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a duration to its histogram bucket.
func bucketFor(d time.Duration) int {
	us := uint64(d.Microseconds())
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket i, used when
// reading quantiles back out of the histogram.
func bucketUpper(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// stage returns the metrics cell for name, registering it on first use.
func (o *Observer) stage(name string) *stageMetrics {
	if m, ok := o.stages.Load(name); ok {
		return m.(*stageMetrics)
	}
	m := &stageMetrics{seq: o.nextSeq.Add(1)}
	if prev, loaded := o.stages.LoadOrStore(name, m); loaded {
		return prev.(*stageMetrics)
	}
	return m
}

// record folds one finished span into the stage's metrics.
func (o *Observer) record(name string, d time.Duration, err error, recovered bool) {
	m := o.stage(name)
	m.runs.Add(1)
	if err != nil {
		m.errors.Add(1)
	}
	if recovered {
		m.panics.Add(1)
	}
	ns := int64(d)
	m.totalNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	m.buckets[bucketFor(d)].Add(1)
}

// CacheHit counts one checker-level cache hit (the library-policy
// memo in core).
func (o *Observer) CacheHit() {
	if o != nil {
		o.cacheHits.Add(1)
	}
}

// CacheMiss counts one checker-level cache miss.
func (o *Observer) CacheMiss() {
	if o != nil {
		o.cacheMisses.Add(1)
	}
}

// AddCounter adds delta to the named counter, registering it on first
// use. Nil-safe. Use for run-level totals that are not per-stage spans
// — e.g. the ESA interpret-cache and vector-pool statistics the corpus
// runners fold in at run end.
func (o *Observer) AddCounter(name string, delta int64) {
	if o == nil {
		return
	}
	c, ok := o.counters.Load(name)
	if !ok {
		cell := &counterCell{seq: o.nextCounterSeq.Add(1)}
		if prev, loaded := o.counters.LoadOrStore(name, cell); loaded {
			c = prev
		} else {
			c = cell
		}
	}
	c.(*counterCell).val.Add(delta)
}

// SetCounter stores an absolute value into the named counter,
// registering it on first use. Nil-safe. Use for gauges whose source
// of truth lives elsewhere (cache sizes, per-scope cache stats) that
// a long-lived exposition like ppserve's /metrics re-publishes on
// every scrape — AddCounter would compound them scrape over scrape.
func (o *Observer) SetCounter(name string, v int64) {
	if o == nil {
		return
	}
	c, ok := o.counters.Load(name)
	if !ok {
		cell := &counterCell{seq: o.nextCounterSeq.Add(1)}
		if prev, loaded := o.counters.LoadOrStore(name, cell); loaded {
			c = prev
		} else {
			c = cell
		}
	}
	c.(*counterCell).val.Store(v)
}

// MaxCounter raises the named counter to v if v exceeds its current
// value, registering it on first use. Nil-safe. Use for high-water
// marks (queue depth, heap size) that many goroutines race to publish
// — the counter converges on the maximum ever observed.
func (o *Observer) MaxCounter(name string, v int64) {
	if o == nil {
		return
	}
	c, ok := o.counters.Load(name)
	if !ok {
		cell := &counterCell{seq: o.nextCounterSeq.Add(1)}
		if prev, loaded := o.counters.LoadOrStore(name, cell); loaded {
			c = prev
		} else {
			c = cell
		}
	}
	cell := &c.(*counterCell).val
	for {
		cur := cell.Load()
		if v <= cur || cell.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Span is one in-flight timed operation. It is a value type: starting
// and ending a span performs no heap allocation.
type Span struct {
	o      *Observer
	name   string
	app    string
	parent string
	start  time.Time
}

// Start opens a span. It is nil-safe: with a nil Observer the span
// still measures time (End reports the duration) but records nothing.
// parent names the enclosing stage for sub-spans ("" for top level).
func (o *Observer) Start(name, app, parent string) Span {
	return Span{o: o, name: name, app: app, parent: parent, start: time.Now()}
}

// End closes the span, folding it into the stage metrics and emitting
// it to the sink when one is attached. It returns the measured
// duration (monotonic, from the Start call).
func (s Span) End(err error, recovered bool) time.Duration {
	d := time.Since(s.start)
	if s.o == nil {
		return d
	}
	s.o.record(s.name, d, err, recovered)
	if s.o.sink != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		s.o.sink.Emit(SpanRecord{
			Start:     s.start,
			Span:      s.name,
			App:       s.app,
			Parent:    s.parent,
			Micros:    d.Microseconds(),
			Err:       msg,
			Recovered: recovered,
		})
	}
	return d
}
