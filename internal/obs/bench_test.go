package obs

import (
	"io"
	"testing"
)

// BenchmarkSpanNil is the un-instrumented cost: a span on a nil
// Observer is one clock read at Start and one at End.
func BenchmarkSpanNil(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Start("stage", "app", "")
		sp.End(nil, false)
	}
}

// BenchmarkSpanMetrics is the metrics-only cost (no sink): atomics and
// a histogram bucket add, no allocation.
func BenchmarkSpanMetrics(b *testing.B) {
	o := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := o.Start("stage", "app", "")
		sp.End(nil, false)
	}
}

// BenchmarkSpanJSONL adds the trace sink: one JSON marshal per span.
func BenchmarkSpanJSONL(b *testing.B) {
	o := New(WithSink(NewJSONLSink(io.Discard)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := o.Start("stage", "app", "")
		sp.End(nil, false)
	}
}

// BenchmarkSpanMetricsParallel measures contention across workers
// sharing one Observer, the corpus-runner shape.
func BenchmarkSpanMetricsParallel(b *testing.B) {
	o := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := o.Start("stage", "app", "")
			sp.End(nil, false)
		}
	})
}
