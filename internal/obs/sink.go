package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanRecord is one finished span as emitted to a trace sink.
type SpanRecord struct {
	// Start is the wall-clock start time of the span.
	Start time.Time `json:"ts"`
	// Span is the stage or detector name.
	Span string `json:"span"`
	// App is the app the span ran for ("" for corpus-level spans).
	App string `json:"app,omitempty"`
	// Parent is the enclosing stage for sub-spans.
	Parent string `json:"parent,omitempty"`
	// Micros is the span duration in microseconds.
	Micros int64 `json:"us"`
	// Err is the stage error, if the stage failed.
	Err string `json:"err,omitempty"`
	// Recovered marks an error converted from a panic.
	Recovered bool `json:"recovered,omitempty"`
}

// Sink consumes finished spans. Implementations must be safe for
// concurrent use: the parallel corpus runner emits from every worker.
type Sink interface {
	Emit(SpanRecord)
}

// JSONLSink writes one JSON object per span, newline-delimited — the
// whole-corpus trace format consumed by jq or imported into tracing
// UIs. Emits are serialized behind a mutex and buffered; call Close
// (or Flush) before reading the output.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps w. If w is an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one record. Write errors are sticky and reported by
// Close.
func (s *JSONLSink) Emit(rec SpanRecord) {
	data, err := json.Marshal(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(data); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.WriteByte('\n')
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close flushes and closes the underlying writer (when it is a
// Closer), returning the first error seen over the sink's lifetime.
func (s *JSONLSink) Close() error {
	ferr := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}
