package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// ServePprof starts a net/http/pprof debug server on addr (host:port;
// ":0" picks a free port) in a background goroutine and returns the
// bound address. The CLIs expose it behind a -pprof flag so CPU and
// heap profiles can be pulled from long corpus runs:
//
//	go tool pprof http://<addr>/debug/pprof/profile
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
