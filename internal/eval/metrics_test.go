package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionMetrics(t *testing.T) {
	// The paper's Table IV CUR row: TP 41, FP 5, recall 91.7% implies
	// FN ≈ 4 on the sample.
	c := Confusion{TP: 41, FP: 5, FN: 4}
	if p := c.Precision(); math.Abs(p-0.891) > 0.001 {
		t.Errorf("precision = %.3f", p)
	}
	if r := c.Recall(); math.Abs(r-0.911) > 0.001 {
		t.Errorf("recall = %.3f", r)
	}
	if f := c.F1(); math.Abs(f-0.901) > 0.001 {
		t.Errorf("f1 = %.3f", f)
	}
	if c.Detected() != 46 {
		t.Errorf("detected = %d", c.Detected())
	}
	if !strings.Contains(c.String(), "TP=41") {
		t.Errorf("string = %q", c.String())
	}
}

func TestConfusionZeroSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("zero confusion produced NaN-adjacent values")
	}
}

// TestF1Bounds: F1 lies between min and max of precision/recall and
// within [0,1].
func TestF1Bounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-9 && f1 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	var c Confusion
	classify(&c, true, true)
	classify(&c, true, false)
	classify(&c, false, true)
	classify(&c, false, false) // true negative: uncounted
	if c.TP != 1 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestRenderers(t *testing.T) {
	tab := TableIV{CUR: Confusion{TP: 41, FP: 5, FN: 4}, Disclose: Confusion{TP: 39, FP: 4, FN: 3}}
	out := RenderTableIV(tab)
	for _, want := range []string{"collect,use,retain", "disclose", "89.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV render missing %q:\n%s", want, out)
		}
	}
	rows := []PermCount{{Permission: "android.permission.CAMERA", Apps: 6}}
	if !strings.Contains(RenderTableIII(rows), "CAMERA") {
		t.Error("Table III render missing permission")
	}
	bars := []InfoCount{{Info: "location", Records: 3, Retained: 1}}
	fig := RenderFig13(bars)
	if !strings.Contains(fig, "location") || !strings.Contains(fig, "###*") {
		t.Errorf("Fig 13 render = %q", fig)
	}
}
