package eval

import (
	"fmt"
	"math/rand"
	"strings"
)

// RecallSample reproduces the paper's §V-E false-negative methodology:
// rather than inspecting the whole corpus, 200 apps are sampled, every
// real inconsistency among them is established (here from ground
// truth, there by manual inspection), and recall is the detected
// fraction.
type RecallSample struct {
	SampleSize int
	CUR        Confusion
	Disclose   Confusion
}

// RunRecallSample draws a seeded 200-app sample and computes recall
// within it.
func (r *CorpusResult) RunRecallSample(seed int64, size int) RecallSample {
	if size > len(r.Reports) {
		size = len(r.Reports)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(r.Reports))[:size]
	out := RecallSample{SampleSize: size}
	for _, i := range perm {
		rep := r.Reports[i]
		truth := r.Truths[i]
		detCUR, detDisc := false, false
		for _, f := range rep.Inconsistent {
			if f.Disclose() {
				detDisc = true
			} else {
				detCUR = true
			}
		}
		classify(&out.CUR, detCUR, truth.InconsistCUR)
		classify(&out.Disclose, detDisc, truth.InconsistDisc)
	}
	return out
}

// Render prints the sample the way §V-E reports it.
func (s RecallSample) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recall check on a %d-app sample (§V-E methodology):\n", s.SampleSize)
	fmt.Fprintf(&b, "  Sents{collect,use,retain}: %d actual, %d detected (recall %.1f%%)\n",
		s.CUR.TP+s.CUR.FN, s.CUR.TP, 100*s.CUR.Recall())
	fmt.Fprintf(&b, "  Sents{disclose}:           %d actual, %d detected (recall %.1f%%)\n",
		s.Disclose.TP+s.Disclose.FN, s.Disclose.TP, 100*s.Disclose.Recall())
	return b.String()
}
