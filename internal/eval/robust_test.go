package eval

import (
	"context"
	"errors"
	"testing"
	"time"

	"ppchecker/internal/bundle"
	"ppchecker/internal/synth"
)

func robustDataset(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRobustCorpusWithCorruption is the headline acceptance test: with
// 20% of an on-disk corpus corrupted across every fault class, the run
// completes, the corrupted apps come back Degraded, and the untouched
// 80% produce detection results identical to the clean baseline.
func TestRobustCorpusWithCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := bundle.WriteDataset(robustDataset(t), dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := DefaultRunOptions()

	base, baseStats, err := EvaluateCorpusDirRobust(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Checked != baseStats.Apps || baseStats.Degraded+baseStats.Failed+baseStats.Skipped != 0 {
		t.Fatalf("clean corpus not clean: %s", baseStats.Render())
	}

	corrupted, err := synth.NewCorruptor(99).CorruptCorpus(dir, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) == 0 {
		t.Fatal("no apps corrupted")
	}

	res, stats, err := EvaluateCorpusDirRobust(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != len(base.Reports) {
		t.Fatalf("report count changed: %d vs %d", len(res.Reports), len(base.Reports))
	}
	if stats.Degraded != len(corrupted) || stats.Failed != 0 || stats.Skipped != 0 {
		t.Fatalf("want %d degraded, got %s", len(corrupted), stats.Render())
	}
	if stats.Checked != stats.Apps-len(corrupted) {
		t.Fatalf("checked count off: %s", stats.Render())
	}
	for i, rep := range res.Reports {
		if fault, isCorrupted := corrupted[rep.App]; isCorrupted {
			if !rep.Partial {
				t.Errorf("corrupted app %s (%s) not marked Partial", rep.App, fault)
			}
			continue
		}
		if rep.Partial {
			t.Errorf("untouched app %s marked Partial: %v", rep.App, rep.Degraded)
		}
		if got, want := rep.Summary(), base.Reports[i].Summary(); got != want {
			t.Errorf("untouched app %s changed detection results:\n%s\nvs baseline\n%s",
				rep.App, got, want)
		}
	}
}

// TestRobustPreCanceled: a run whose context is already canceled
// returns immediately with every app Skipped and a stub report in
// every slot, so downstream table code stays nil-safe.
func TestRobustPreCanceled(t *testing.T) {
	ds := robustDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := EvaluateCorpusRobust(ctx, ds, DefaultRunOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Skipped != len(ds.Apps) {
		t.Fatalf("want all %d apps skipped: %s", len(ds.Apps), stats.Render())
	}
	for _, rep := range res.Reports {
		if rep == nil || !rep.Partial {
			t.Fatal("skipped app without a partial stub report")
		}
	}
}

// TestRobustMidRunCancel: canceling mid-run returns promptly with
// partial stats — the apps already finished stay counted, the rest are
// Skipped.
func TestRobustMidRunCancel(t *testing.T) {
	ds := robustDataset(t)
	// Repeat the corpus so the run is long enough that the cancel below
	// always lands mid-flight.
	for len(ds.Apps) < 20*synth.MinApps {
		ds.Apps = append(ds.Apps, ds.Apps[:synth.MinApps]...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, stats, err := EvaluateCorpusRobust(ctx, ds, RunOptions{Workers: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	if got := stats.Checked + stats.Degraded + stats.Failed + stats.Skipped; got != stats.Apps {
		t.Fatalf("outcome counts don't partition the corpus: %s", stats.Render())
	}
	if len(res.Reports) != len(ds.Apps) {
		t.Fatalf("missing report slots: %d of %d", len(res.Reports), len(ds.Apps))
	}
	for _, rep := range res.Reports {
		if rep == nil {
			t.Fatal("nil report slot after cancellation")
		}
	}
}

// TestRobustPerAppTimeoutRetries: an unmeetable per-app timeout makes
// every app fail after its bounded retries, with the attempts counted.
func TestRobustPerAppTimeoutRetries(t *testing.T) {
	ds := robustDataset(t)
	ds.Apps = ds.Apps[:8]
	opts := RunOptions{
		Workers:       2,
		PerAppTimeout: time.Nanosecond,
		MaxRetries:    1,
		RetryBackoff:  time.Millisecond,
	}
	res, stats, err := EvaluateCorpusRobust(context.Background(), ds, opts)
	if err != nil {
		t.Fatalf("parent context not canceled, err = %v", err)
	}
	if stats.Failed != len(ds.Apps) {
		t.Fatalf("want %d failed: %s", len(ds.Apps), stats.Render())
	}
	if stats.Retried != len(ds.Apps)*opts.MaxRetries {
		t.Fatalf("want %d retries: %s", len(ds.Apps)*opts.MaxRetries, stats.Render())
	}
	for _, rep := range res.Reports {
		if rep == nil || !rep.Partial {
			t.Fatal("failed app without a partial report")
		}
	}
}
