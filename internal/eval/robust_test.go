package eval

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
	"ppchecker/internal/synth"
)

func robustDataset(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRobustCorpusWithCorruption is the headline acceptance test: with
// 20% of an on-disk corpus corrupted across every fault class, the run
// completes, the corrupted apps come back Degraded, and the untouched
// 80% produce detection results identical to the clean baseline.
func TestRobustCorpusWithCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := bundle.WriteDataset(robustDataset(t), dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := DefaultRunOptions()

	base, baseStats, err := EvaluateCorpusDirRobust(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Checked != baseStats.Apps || baseStats.Degraded+baseStats.Failed+baseStats.Skipped != 0 {
		t.Fatalf("clean corpus not clean: %s", baseStats.Render())
	}

	corrupted, err := synth.NewCorruptor(99).CorruptCorpus(dir, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) == 0 {
		t.Fatal("no apps corrupted")
	}

	res, stats, err := EvaluateCorpusDirRobust(ctx, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != len(base.Reports) {
		t.Fatalf("report count changed: %d vs %d", len(res.Reports), len(base.Reports))
	}
	if stats.Degraded != len(corrupted) || stats.Failed != 0 || stats.Skipped != 0 {
		t.Fatalf("want %d degraded, got %s", len(corrupted), stats.Render())
	}
	if stats.Checked != stats.Apps-len(corrupted) {
		t.Fatalf("checked count off: %s", stats.Render())
	}
	for i, rep := range res.Reports {
		if fault, isCorrupted := corrupted[rep.App]; isCorrupted {
			if !rep.Partial {
				t.Errorf("corrupted app %s (%s) not marked Partial", rep.App, fault)
			}
			continue
		}
		if rep.Partial {
			t.Errorf("untouched app %s marked Partial: %v", rep.App, rep.Degraded)
		}
		if got, want := rep.Summary(), base.Reports[i].Summary(); got != want {
			t.Errorf("untouched app %s changed detection results:\n%s\nvs baseline\n%s",
				rep.App, got, want)
		}
	}
}

// TestRobustPreCanceled: a run whose context is already canceled
// returns immediately with every app Skipped and a stub report in
// every slot, so downstream table code stays nil-safe.
func TestRobustPreCanceled(t *testing.T) {
	ds := robustDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := EvaluateCorpusRobust(ctx, ds, DefaultRunOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Skipped != len(ds.Apps) {
		t.Fatalf("want all %d apps skipped: %s", len(ds.Apps), stats.Render())
	}
	for _, rep := range res.Reports {
		if rep == nil || !rep.Partial {
			t.Fatal("skipped app without a partial stub report")
		}
	}
}

// TestRobustMidRunCancel: canceling mid-run returns promptly with
// partial stats — the apps already finished stay counted, the rest are
// Skipped.
func TestRobustMidRunCancel(t *testing.T) {
	ds := robustDataset(t)
	// Repeat the corpus so the run is long enough that the cancel below
	// always lands mid-flight.
	for len(ds.Apps) < 20*synth.MinApps {
		ds.Apps = append(ds.Apps, ds.Apps[:synth.MinApps]...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, stats, err := EvaluateCorpusRobust(ctx, ds, RunOptions{Workers: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	if got := stats.Checked + stats.Degraded + stats.Failed + stats.Skipped; got != stats.Apps {
		t.Fatalf("outcome counts don't partition the corpus: %s", stats.Render())
	}
	if len(res.Reports) != len(ds.Apps) {
		t.Fatalf("missing report slots: %d of %d", len(res.Reports), len(ds.Apps))
	}
	for _, rep := range res.Reports {
		if rep == nil {
			t.Fatal("nil report slot after cancellation")
		}
	}
}

// TestRobustPerAppTimeoutRetries: an unmeetable per-app timeout
// exhausts every app's bounded retries, with the attempts counted.
// The final attempt still yields a (fully degraded) partial report,
// so the apps are classified Degraded — not Failed with their real
// partial report mislabeled as a stub. Before the outcome-
// classification fix this run reported 8 failed / 0 degraded.
func TestRobustPerAppTimeoutRetries(t *testing.T) {
	ds := robustDataset(t)
	ds.Apps = ds.Apps[:8]
	opts := RunOptions{
		Workers:       2,
		PerAppTimeout: time.Nanosecond,
		MaxRetries:    1,
		RetryBackoff:  time.Millisecond,
	}
	res, stats, err := EvaluateCorpusRobust(context.Background(), ds, opts)
	if err != nil {
		t.Fatalf("parent context not canceled, err = %v", err)
	}
	if stats.Degraded != len(ds.Apps) || stats.Failed != 0 {
		t.Fatalf("want %d degraded, 0 failed: %s", len(ds.Apps), stats.Render())
	}
	if stats.Retried != len(ds.Apps)*opts.MaxRetries {
		t.Fatalf("want %d retries: %s", len(ds.Apps)*opts.MaxRetries, stats.Render())
	}
	for _, rep := range res.Reports {
		if rep == nil || !rep.Partial {
			t.Fatal("degraded app without a partial report")
		}
	}
}

// TestCheckAppFinalAttemptPartialIsDegraded is the focused regression
// test for the outcome-misclassification bug: when the last attempt
// returns a non-nil partial report together with an error, CheckApp
// must classify it Degraded and hand back the real report, not count
// it Failed as if the slot held a stub.
func TestCheckAppFinalAttemptPartialIsDegraded(t *testing.T) {
	checker := core.NewChecker()
	partial := &core.Report{App: "x", Policy: &policy.Analysis{}}
	partial.AddDegraded(&core.StageError{Stage: core.StageStatic, App: "x", Err: errors.New("stage blew up")})
	attempts := 0
	rep, outcome, retries := CheckApp(context.Background(), checker, "x",
		func(context.Context, *core.Checker) (*core.Report, error) {
			attempts++
			return partial, errors.New("attempt error")
		}, AttemptOptions{MaxRetries: 1})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one retry)", attempts)
	}
	if outcome != OutcomeDegraded {
		t.Fatalf("outcome = %v, want OutcomeDegraded", outcome)
	}
	if rep != partial {
		t.Fatal("the real partial report was replaced by a stub")
	}
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}

	// A nil report on the last attempt is still a hard failure.
	rep, outcome, _ = CheckApp(context.Background(), checker, "y",
		func(context.Context, *core.Checker) (*core.Report, error) {
			return nil, errors.New("nothing produced")
		}, AttemptOptions{})
	if outcome != OutcomeFailed || rep == nil || !rep.Partial {
		t.Fatalf("nil-report failure: outcome=%v rep=%v", outcome, rep)
	}

	// A complete (non-partial) report that still came with an error
	// records the error as a StageRun degradation rather than dropping
	// it.
	complete := &core.Report{App: "z", Policy: &policy.Analysis{}}
	rep, outcome, _ = CheckApp(context.Background(), checker, "z",
		func(context.Context, *core.Checker) (*core.Report, error) {
			return complete, errors.New("late deadline")
		}, AttemptOptions{})
	if outcome != OutcomeDegraded || !rep.Partial || !rep.DegradedStage(core.StageRun) {
		t.Fatalf("complete-report-with-error: outcome=%v partial=%v", outcome, rep.Partial)
	}
}

// TestConcurrentRunsESAStatAttribution is the regression test for the
// cache-stats double-counting bug: the old implementation attributed a
// before/after delta of the process-global ESA counters to each run,
// so two concurrent runs counted each other's interpret-memo traffic
// into both -metrics expositions. With per-run stat scopes, each
// run's exposition counts exactly its own lookups: the two runs'
// totals sum to the global delta instead of roughly doubling it.
func TestConcurrentRunsESAStatAttribution(t *testing.T) {
	ds := robustDataset(t)
	ds.Apps = ds.Apps[:40]
	run := func(obsv *obs.Observer) RunStats {
		_, stats, err := EvaluateCorpusRobust(context.Background(), ds,
			RunOptions{Workers: 2, Observer: obsv})
		if err != nil {
			t.Error(err)
		}
		return stats
	}

	globalBefore := esa.AggregateCacheStats()
	obsA, obsB := obs.New(), obs.New()
	var statsA, statsB RunStats
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); statsA = run(obsA) }()
	go func() { defer wg.Done(); statsB = run(obsB) }()
	wg.Wait()
	globalDelta := esa.AggregateCacheStats().Sub(globalBefore)

	lookups := func(s RunStats) int64 {
		t.Helper()
		hits, ok := s.Metrics.Counter("esa-interpret-hits")
		if !ok {
			t.Fatal("esa-interpret-hits missing from run metrics")
		}
		misses, ok := s.Metrics.Counter("esa-interpret-misses")
		if !ok {
			t.Fatal("esa-interpret-misses missing from run metrics")
		}
		return hits + misses
	}
	la, lb := lookups(statsA), lookups(statsB)
	if la == 0 || lb == 0 {
		t.Fatalf("a run attributed zero ESA lookups: %d, %d", la, lb)
	}
	// The two runs are the only ESA users in this window, so their
	// attributed lookups must exactly partition the global delta. The
	// old delta-of-globals attribution reported roughly 2x the global
	// total here.
	if got, want := la+lb, globalDelta.Hits+globalDelta.Misses; got != want {
		t.Fatalf("per-run lookups sum to %d, global delta is %d (double counting?)", got, want)
	}
}
