package eval

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
	"ppchecker/internal/synth"
)

// RunStats summarizes how a robust corpus run went, app by app. The
// counts partition the corpus: Apps = Checked + Degraded + Failed +
// Skipped. Retried counts extra attempts, not apps.
type RunStats struct {
	// Apps is the total number of apps in the run.
	Apps int
	// Checked counts apps whose full pipeline completed cleanly.
	Checked int
	// Degraded counts apps whose report is Partial: one or more stages
	// failed but the rest of the pipeline still produced findings.
	Degraded int
	// Failed counts apps with no usable analysis — a worker panic
	// outside the pipeline or a per-app timeout that survived every
	// retry. Their report slot holds a stub so table code stays safe.
	Failed int
	// Retried counts retry attempts performed across all apps.
	Retried int
	// Skipped counts apps abandoned because the run context was
	// canceled (either before they started or mid-analysis).
	Skipped int

	// Metrics is the per-stage latency and failure breakdown of the
	// run, captured from RunOptions.Observer at run end. Nil when the
	// run was not instrumented.
	Metrics *obs.Snapshot
}

// Render prints the run statistics on one line, suitable for showing
// alongside the paper tables.
func (s RunStats) Render() string {
	return fmt.Sprintf(
		"Corpus run: %d apps — %d checked clean, %d degraded, %d failed, %d skipped (%d retries)",
		s.Apps, s.Checked, s.Degraded, s.Failed, s.Skipped, s.Retried)
}

// RunOptions configures the robust corpus runner.
type RunOptions struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// PerAppTimeout bounds one analysis attempt; 0 means no bound.
	PerAppTimeout time.Duration
	// MaxRetries is how many extra attempts a failed app gets.
	MaxRetries int
	// RetryBackoff is the base pause before the first retry; later
	// retries back off exponentially (doubling per attempt) up to
	// RetryBackoffMax.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth; 0 means 32x the
	// base backoff.
	RetryBackoffMax time.Duration
	// RetryJitter randomizes each backoff within ±RetryJitter fraction
	// of its nominal value (0..1). A fixed backoff synchronizes the
	// retries of every worker that failed in the same burst — under
	// load they all sleep, then all slam the same contended resource
	// again together; jitter decorrelates them. 0 means no jitter.
	RetryJitter float64
	// CheckerOptions configure the per-worker checkers.
	CheckerOptions []core.CheckerOption
	// Observer, when non-nil, instruments the run: every worker's
	// checker reports stage spans to it, each app gets a corpus-run
	// span covering its whole analysis (retries included), and the
	// final per-stage snapshot lands in RunStats.Metrics.
	Observer *obs.Observer
	// SharedAnalysisCache is the library-policy analysis cache handed
	// to every worker's checker, so the corpus's recurring library
	// policies are analyzed once per run rather than once per worker.
	// When nil the runner constructs one per run; pass a cache
	// explicitly to share it across several runs (the checkers must
	// then use an identical policy-analyzer configuration).
	SharedAnalysisCache *core.AnalysisCache
}

// DefaultRunOptions returns the runner defaults: GOMAXPROCS workers,
// no per-app timeout, one retry after a short jittered backoff.
func DefaultRunOptions() RunOptions {
	return RunOptions{MaxRetries: 1, RetryBackoff: 50 * time.Millisecond, RetryJitter: 0.5}
}

// Outcome classifies one app's analysis, mapped one-to-one onto the
// RunStats counters. It is exported so request-scoped callers (the
// ppserve analysis service) can reuse the corpus runner's per-app
// attempt machinery — CheckApp — instead of reimplementing the
// retry/timeout/panic contract.
type Outcome int

// Per-app outcomes.
const (
	// OutcomeChecked: the full pipeline completed cleanly.
	OutcomeChecked Outcome = iota
	// OutcomeDegraded: the report is Partial — one or more stages
	// failed or timed out, but the surviving findings are usable.
	OutcomeDegraded
	// OutcomeFailed: no usable analysis at all; the report is a stub
	// carrying the failure as a StageRun error.
	OutcomeFailed
	// OutcomeSkipped: the caller's context was canceled before or
	// during the analysis.
	OutcomeSkipped
)

// String returns the outcome's wire name (used in ppserve responses).
func (o Outcome) String() string {
	switch o {
	case OutcomeChecked:
		return "checked"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeFailed:
		return "failed"
	case OutcomeSkipped:
		return "skipped"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// appJob is one unit of corpus work: an app's name and ground truth
// plus a closure that produces its report on a worker's checker.
type appJob struct {
	name  string
	truth synth.GroundTruth
	run   func(ctx context.Context, checker *core.Checker) (*core.Report, error)
}

// Job is one unit of work for RunJobs: a named analysis closure plus
// its ground-truth label (zero truth when unlabeled).
type Job struct {
	Name  string
	Truth synth.GroundTruth
	Run   func(ctx context.Context, checker *core.Checker) (*core.Report, error)
}

// RunJobs drives the robust worker pool — per-worker checkers over a
// shared analysis cache and ESA stat scope, per-attempt timeouts,
// bounded retries, prompt cancellation — over arbitrary jobs instead
// of a Dataset. It is the generalized core of EvaluateCorpusRobust,
// exported for callers that wrap the pipeline (the longitudinal engine
// runs every app *version* as one job here).
func RunJobs(ctx context.Context, jobs []Job, opts RunOptions) (*CorpusResult, RunStats, error) {
	internal := make([]appJob, len(jobs))
	for i, j := range jobs {
		internal[i] = appJob{name: j.Name, truth: j.Truth, run: j.Run}
	}
	return runRobust(ctx, internal, opts)
}

// EvaluateCorpusRobust is the fault-tolerant corpus runner: every app
// is analyzed in isolation (a panic or timeout in one cannot take down
// the run), hard failures get bounded retries, and canceling ctx
// returns promptly with the remaining apps counted as Skipped. Each
// report lands at its app's index, so on an all-clean run the result
// is identical to EvaluateCorpusParallel.
func EvaluateCorpusRobust(ctx context.Context, ds *synth.Dataset, opts RunOptions) (*CorpusResult, RunStats, error) {
	jobs := make([]appJob, len(ds.Apps))
	for i, ga := range ds.Apps {
		app := ga.App
		jobs[i] = appJob{
			name:  app.Name,
			truth: ga.Truth,
			run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
				return checker.CheckSafe(ctx, app)
			},
		}
	}
	return runRobust(ctx, jobs, opts)
}

// EvaluateCorpusDirRobust evaluates an on-disk corpus the way
// EvaluateCorpusDir does, but tolerates damage: unreadable or corrupt
// bundle files degrade that one app (recorded under StageRead or
// StageDecode) instead of failing the whole run, and a missing
// truth.json yields empty ground truth rather than an error.
func EvaluateCorpusDirRobust(ctx context.Context, dir string, opts RunOptions) (*CorpusResult, RunStats, error) {
	appDirs, err := bundle.ListApps(dir)
	if err != nil {
		return nil, RunStats{}, err
	}
	truthByPkg := map[string]synth.GroundTruth{}
	if truths, err := bundle.ReadTruth(dir); err == nil {
		for _, t := range truths {
			truthByPkg[t.Pkg] = t.Truth
		}
	}
	libsDir := filepath.Join(dir, bundle.DirLibs)
	jobs := make([]appJob, len(appDirs))
	for i, appDir := range appDirs {
		appDir := appDir
		name := filepath.Base(appDir)
		jobs[i] = appJob{
			name:  name,
			truth: truthByPkg[name],
			run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
				app, ferrs := bundle.ReadAppLenient(appDir, libsDir)
				rep, err := checker.CheckSafe(ctx, app)
				if rep != nil {
					for _, fe := range ferrs {
						st := core.StageRead
						if fe.File == bundle.FileAPK && !fe.Missing {
							st = core.StageDecode
						}
						rep.AddDegraded(&core.StageError{Stage: st, App: app.Name, Err: fe})
					}
				}
				return rep, err
			},
		}
	}
	return runRobust(ctx, jobs, opts)
}

// runRobust drives the worker pool over the jobs. Reports land at
// their job's index; every slot is filled — apps never attempted get a
// Skipped stub — so downstream table code needs no nil checks.
func runRobust(ctx context.Context, jobs []appJob, opts RunOptions) (*CorpusResult, RunStats, error) {
	n := len(jobs)
	stats := RunStats{Apps: n}
	res := &CorpusResult{
		Reports: make([]*core.Report, n),
		Truths:  make([]synth.GroundTruth, n),
	}
	for i := range jobs {
		res.Truths[i] = jobs[i].truth
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	libCache := opts.SharedAnalysisCache
	if libCache == nil {
		libCache = core.NewAnalysisCache()
	}
	checkerOpts := append(append([]core.CheckerOption{}, opts.CheckerOptions...),
		core.WithSharedAnalysisCache(libCache))
	if opts.Observer != nil {
		checkerOpts = append(checkerOpts, core.WithObserver(opts.Observer))
	}
	// Per-run ESA stat scope: every worker's checker attributes its
	// interpret-memo traffic here, so concurrent runs sharing the
	// process-global memo (inevitable under ppserve) don't double-count
	// each other's hits and misses into both -metrics expositions.
	esaScope := esa.NewStatScope()
	checkerOpts = append(checkerOpts, core.WithESAStatScope(esaScope))
	attempt := AttemptOptions{
		Timeout:      opts.PerAppTimeout,
		MaxRetries:   opts.MaxRetries,
		RetryBackoff: opts.RetryBackoff,
		BackoffMax:   opts.RetryBackoffMax,
		Jitter:       opts.RetryJitter,
	}
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checker := core.NewChecker(checkerOpts...)
			for i := range idxCh {
				sp := opts.Observer.Start(string(core.StageRun), jobs[i].name, "")
				rep, outcome, retries := CheckApp(ctx, checker, jobs[i].name, jobs[i].run, attempt)
				sp.End(runError(rep, outcome), false)
				res.Reports[i] = rep
				mu.Lock()
				stats.Retried += retries
				switch outcome {
				case OutcomeChecked:
					stats.Checked++
				case OutcomeDegraded:
					stats.Degraded++
				case OutcomeFailed:
					stats.Failed++
				case OutcomeSkipped:
					stats.Skipped++
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	for i := range res.Reports {
		if res.Reports[i] == nil {
			res.Reports[i] = stubReport(jobs[i].name, ctx.Err())
			stats.Skipped++
		}
	}
	if opts.Observer != nil {
		// Fold the run's cache economics into the exposition: the ESA
		// interpret memo / vector pool (attributed per-run through the
		// stat scope, so concurrent runs don't pollute each other) and
		// the shared lib-policy cache (analyses performed must not
		// exceed unique policy texts).
		core.RecordESACacheCounters(opts.Observer, esaScope.Snapshot())
		_, analyses := libCache.Stats()
		opts.Observer.AddCounter("lib-policy-analyses", analyses)
		opts.Observer.AddCounter("lib-policy-unique-texts", int64(libCache.Len()))
	}
	stats.Metrics = opts.Observer.Snapshot()
	return res, stats, ctx.Err()
}

// runError maps a per-app outcome to the error recorded on its
// corpus-run span: hard failures and skips carry the stub's StageRun
// error, clean and degraded runs count as successes (degradation is
// already visible on the individual stage spans).
func runError(rep *core.Report, outcome Outcome) error {
	if outcome != OutcomeFailed && outcome != OutcomeSkipped {
		return nil
	}
	for _, e := range rep.Degraded {
		if e.Stage == core.StageRun {
			return e
		}
	}
	return context.Canceled
}

// AttemptOptions bounds one app's analysis in CheckApp. It carries
// the per-attempt subset of RunOptions, so a request-scoped caller
// (ppserve) gets identical timeout/retry semantics to the corpus
// runner.
type AttemptOptions struct {
	// Timeout bounds one analysis attempt (RunOptions.PerAppTimeout
	// semantics); 0 means no bound.
	Timeout time.Duration
	// MaxRetries is how many extra attempts a hard failure gets.
	MaxRetries int
	// RetryBackoff is the base pause before the first retry; retry n
	// nominally waits RetryBackoff << (n-1).
	RetryBackoff time.Duration
	// BackoffMax caps the exponential growth; 0 means 32x the base.
	BackoffMax time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of
	// its nominal value (clamped to [0, 1]); 0 keeps it fixed.
	Jitter float64
}

// BackoffFor returns the pause before the retry-th retry (1-based):
// exponential doubling from RetryBackoff, capped at BackoffMax, then
// jittered over [nominal*(1-Jitter), nominal*(1+Jitter)]. Exposed so
// the streaming ingestion layer and tests share the exact schedule the
// runner sleeps on.
func (o AttemptOptions) BackoffFor(retry int) time.Duration {
	if o.RetryBackoff <= 0 || retry <= 0 {
		return 0
	}
	max := o.BackoffMax
	if max <= 0 {
		max = 32 * o.RetryBackoff
	}
	d := o.RetryBackoff
	for i := 1; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	j := o.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j > 0 {
		// Uniform in [d*(1-j), d*(1+j)]; the global source is
		// goroutine-safe and deliberately unseeded — decorrelation is
		// the whole point.
		d = time.Duration((1 - j + 2*j*rand.Float64()) * float64(d))
	}
	return d
}

// Exhausted reports whether a CheckApp result spent the whole non-zero
// retry budget with its final attempt still erroring: a hard failure
// (stub report), or a degraded report whose StageRun entry carries the
// last attempt's error. A degraded outcome whose final attempt
// *succeeded* — even after the same number of retries — is not
// exhaustion; the budget worked.
func (o AttemptOptions) Exhausted(outcome Outcome, rep *core.Report, retries int) bool {
	if o.MaxRetries <= 0 || retries < o.MaxRetries {
		return false
	}
	if outcome == OutcomeFailed {
		return true
	}
	return outcome == OutcomeDegraded && rep != nil && rep.DegradedStage(core.StageRun)
}

// CheckApp analyzes one app with bounded retries — the request-scoped
// entry point shared by the corpus runner and the ppserve service.
// Hard failures (a panic outside the pipeline's own recovery, or a
// per-attempt timeout that produced nothing) are retried up to
// MaxRetries with RetryBackoff between attempts; a degraded-but-
// complete report is an answer, not a failure, and is never retried.
// Parent-context cancellation always wins over retry.
//
// The returned report is never nil: OutcomeFailed and OutcomeSkipped
// with no partial results carry a stub holding the failure as a
// StageRun error. A final attempt that yields a non-nil report
// together with an error (e.g. the per-attempt timeout expired midway
// through the pipeline) is classified OutcomeDegraded — the partial
// findings are real and RunStats must not count them as a stub.
func CheckApp(ctx context.Context, checker *core.Checker, name string,
	run func(context.Context, *core.Checker) (*core.Report, error), opts AttemptOptions) (*core.Report, Outcome, int) {
	retries := 0
	for {
		rep, err := attemptOnce(ctx, checker, name, run, opts.Timeout)
		if err == nil && rep != nil {
			if rep.Partial {
				return rep, OutcomeDegraded, retries
			}
			return rep, OutcomeChecked, retries
		}
		if ctx.Err() != nil {
			if rep == nil {
				rep = stubReport(name, ctx.Err())
			}
			return rep, OutcomeSkipped, retries
		}
		if retries >= opts.MaxRetries {
			if rep != nil {
				// The last attempt produced a usable (if partial)
				// report: classify Degraded, not Failed, so the real
				// findings land in the report slot instead of being
				// treated as a stub. The attempt error is recorded as a
				// StageRun degradation rather than dropped — it is what
				// distinguishes "budget spent, still erroring" (see
				// AttemptOptions.Exhausted) from a salvaged success.
				rep.AddDegraded(&core.StageError{Stage: core.StageRun, App: name, Err: err})
				return rep, OutcomeDegraded, retries
			}
			return stubReport(name, err), OutcomeFailed, retries
		}
		retries++
		if backoff := opts.BackoffFor(retries); backoff > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				if rep == nil {
					rep = stubReport(name, ctx.Err())
				}
				return rep, OutcomeSkipped, retries
			}
		}
	}
}

// attemptOnce runs one analysis attempt under the per-attempt timeout,
// converting any panic that escapes the job into an error so a single
// bad app cannot kill its worker goroutine.
func attemptOnce(ctx context.Context, checker *core.Checker, name string,
	run func(context.Context, *core.Checker) (*core.Report, error), timeout time.Duration) (rep *core.Report, err error) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("app %s: worker panic: %v", name, r)
		}
	}()
	return run(actx, checker)
}

// stubReport stands in for an app that produced no report at all, so
// result slices stay fully populated. It carries the failure as a
// StageRun error and keeps the never-nil Policy invariant that the
// detectors and table code rely on.
func stubReport(name string, err error) *core.Report {
	if err == nil {
		err = context.Canceled
	}
	r := &core.Report{App: name, Policy: &policy.Analysis{}}
	r.AddDegraded(&core.StageError{Stage: core.StageRun, App: name, Err: err})
	return r
}
