package eval

import (
	"context"
	"runtime"

	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// EvaluateCorpusParallel is EvaluateCorpus fanned out over a worker
// pool. A Checker is not safe for concurrent use (it memoizes library
// policy analyses), so each worker owns one; results land at their
// app's index, keeping output identical to the serial path. The work
// runs on the robust engine, so one misbehaving app degrades its own
// report instead of crashing the run.
func EvaluateCorpusParallel(ds *synth.Dataset, workers int, opts ...core.CheckerOption) *CorpusResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ds.Apps) {
		workers = len(ds.Apps)
	}
	if workers <= 1 {
		return EvaluateCorpus(ds, opts...)
	}
	res, _, _ := EvaluateCorpusRobust(context.Background(), ds,
		RunOptions{Workers: workers, CheckerOptions: opts})
	return res
}

// EvaluateCorpusDir evaluates a corpus previously written to disk by
// cmd/ppgen (or bundle.WriteDataset): app bundles are loaded, checked,
// and paired with the stored ground truth.
func EvaluateCorpusDir(dir string, opts ...core.CheckerOption) (*CorpusResult, error) {
	truths, err := bundle.ReadTruth(dir)
	if err != nil {
		return nil, err
	}
	truthByPkg := make(map[string]synth.GroundTruth, len(truths))
	for _, t := range truths {
		truthByPkg[t.Pkg] = t.Truth
	}
	appDirs, err := bundle.ListApps(dir)
	if err != nil {
		return nil, err
	}
	checker := core.NewChecker(opts...)
	res := &CorpusResult{}
	libsDir := dir + "/libs"
	for _, appDir := range appDirs {
		app, err := bundle.ReadApp(appDir, libsDir)
		if err != nil {
			return nil, err
		}
		res.Reports = append(res.Reports, checker.Check(app))
		res.Truths = append(res.Truths, truthByPkg[app.Name])
	}
	return res, nil
}
