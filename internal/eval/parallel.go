package eval

import (
	"context"
	"runtime"

	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// EvaluateCorpusParallel is EvaluateCorpus fanned out over a worker
// pool. A Checker is not safe for concurrent use, so each worker owns
// one, but all workers share a single-flight library-policy analysis
// cache, so each unique library policy is analyzed once per run;
// results land at their app's index, keeping output identical to the
// serial path. The work runs on the robust engine, so one misbehaving
// app degrades its own report instead of crashing the run.
func EvaluateCorpusParallel(ds *synth.Dataset, workers int, opts ...core.CheckerOption) *CorpusResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ds.Apps) {
		workers = len(ds.Apps)
	}
	if workers <= 1 {
		return EvaluateCorpus(ds, opts...)
	}
	res, _, _ := EvaluateCorpusRobust(context.Background(), ds,
		RunOptions{Workers: workers, CheckerOptions: opts})
	return res
}

// EvaluateCorpusDir evaluates a corpus previously written to disk by
// cmd/ppgen (or bundle.WriteDataset): app bundles are loaded, checked,
// and paired with the stored ground truth.
//
// It runs on the robust engine with lenient bundle reads: one corrupt
// or unreadable bundle degrades its own report (StageRead/StageDecode)
// instead of aborting the whole directory run, and a missing
// truth.json yields empty ground truth. Apps are checked serially on
// one checker so results are deterministic; use EvaluateCorpusDirRobust
// directly for a parallel or cancellable run.
func EvaluateCorpusDir(dir string, opts ...core.CheckerOption) (*CorpusResult, error) {
	res, _, err := EvaluateCorpusDirRobust(context.Background(), dir, RunOptions{
		Workers:        1,
		CheckerOptions: opts,
	})
	return res, err
}
