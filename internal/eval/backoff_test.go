package eval

import (
	"testing"
	"time"
)

// TestBackoffForExponentialNoJitter: with jitter off the schedule is
// the exact doubling series capped at BackoffMax.
func TestBackoffForExponentialNoJitter(t *testing.T) {
	opts := AttemptOptions{RetryBackoff: 10 * time.Millisecond, BackoffMax: 60 * time.Millisecond}
	want := []time.Duration{
		0,                     // retry 0: no pause
		10 * time.Millisecond, // retry 1
		20 * time.Millisecond, // retry 2
		40 * time.Millisecond, // retry 3
		60 * time.Millisecond, // retry 4: capped
		60 * time.Millisecond, // retry 5: stays capped
	}
	for retry, w := range want {
		if got := opts.BackoffFor(retry); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", retry, got, w)
		}
	}
}

// TestBackoffForDefaultCap: a zero BackoffMax caps at 32x the base, so
// a long retry chain cannot sleep unboundedly (or overflow the shift).
func TestBackoffForDefaultCap(t *testing.T) {
	opts := AttemptOptions{RetryBackoff: time.Millisecond}
	if got, want := opts.BackoffFor(1000), 32*time.Millisecond; got != want {
		t.Fatalf("BackoffFor(1000) = %v, want default cap %v", got, want)
	}
}

// TestBackoffForJitterBounds: jittered backoffs stay within the
// ±Jitter band around the nominal value and actually vary (the whole
// point is desynchronizing workers that failed together).
func TestBackoffForJitterBounds(t *testing.T) {
	opts := AttemptOptions{RetryBackoff: 100 * time.Millisecond, Jitter: 0.5}
	lo, hi := 50*time.Millisecond, 150*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := opts.BackoffFor(1)
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct backoffs in 200 draws", len(seen))
	}
}

// TestBackoffForJitterClamped: out-of-range jitter values are clamped
// rather than producing negative sleeps.
func TestBackoffForJitterClamped(t *testing.T) {
	opts := AttemptOptions{RetryBackoff: 10 * time.Millisecond, Jitter: 5}
	for i := 0; i < 100; i++ {
		if d := opts.BackoffFor(1); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("clamped jitter gave %v", d)
		}
	}
	neg := AttemptOptions{RetryBackoff: 10 * time.Millisecond, Jitter: -3}
	if d := neg.BackoffFor(1); d != 10*time.Millisecond {
		t.Fatalf("negative jitter not clamped to none: %v", d)
	}
}
