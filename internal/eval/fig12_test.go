package eval

import (
	"strings"
	"testing"

	"ppchecker/internal/synth"
)

// TestFig12MatchesPaper pins the pattern-selection experiment to the
// paper's §V-B outcome: n is set to 230 with detecting rate 88.0%
// (false negative rate 12%) and false positive rate 2.8%.
func TestFig12MatchesPaper(t *testing.T) {
	data := synth.GenerateFig12(synth.DefaultFig12Config())
	if len(data.Positive) != 250 || len(data.Negative) != 250 {
		t.Fatalf("labelled sets = %d/%d, want 250/250", len(data.Positive), len(data.Negative))
	}
	r := RunFig12(data)
	t.Logf("\n%s", RenderFig12(r, 20))
	if r.BestN != 230 {
		t.Errorf("selected n = %d, want 230", r.BestN)
	}
	if fn := 100 * r.BestFN; fn < 11.5 || fn > 12.5 {
		t.Errorf("FN rate = %.1f%%, want 12.0%%", fn)
	}
	if fp := 100 * r.BestFP; fp < 2.3 || fp > 3.3 {
		t.Errorf("FP rate = %.1f%%, want 2.8%%", fp)
	}
	// Curve shape: FN monotonically non-increasing; FP non-decreasing.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FNRate > r.Points[i-1].FNRate+1e-9 {
			t.Fatalf("FN rate increased at n=%d", r.Points[i].N)
		}
		if r.Points[i].FPRate < r.Points[i-1].FPRate-1e-9 {
			t.Fatalf("FP rate decreased at n=%d", r.Points[i].N)
		}
	}
	// Past the optimum the FP rate must rise (the junk-pattern tail).
	last := r.Points[len(r.Points)-1]
	if last.FPRate <= r.BestFP {
		t.Errorf("FP rate does not rise past the optimum: %.3f", last.FPRate)
	}
	if !strings.Contains(RenderFig12(r, 20), "selected n = 230") {
		t.Error("render does not report the selected n")
	}
}
