package eval

import (
	"strings"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/synth"
)

// evaluatePaper builds and evaluates the full paper-scale corpus once
// per test binary.
var paperResult *CorpusResult

func paperCorpus(t *testing.T) *CorpusResult {
	t.Helper()
	if paperResult != nil {
		return paperResult
	}
	ds, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	paperResult = EvaluateCorpus(ds)
	return paperResult
}

// TestSummaryMatchesPaper pins §V-F: 282/1,197 apps (23.6%) with at
// least one problem; 222 incomplete (64 desc / 180 code, 195 raw code
// detections); 4 incorrect; 75 inconsistent; 234 missed records of
// which 32 retained.
func TestSummaryMatchesPaper(t *testing.T) {
	s := paperCorpus(t).Summary()
	t.Logf("\n%s", s.Render())
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"apps", s.NumApps, 1197},
		{"apps with problem", s.AppsWithProblem, 282},
		{"incomplete apps", s.IncompleteApps, 222},
		{"incomplete via description", s.IncompleteViaDesc, 64},
		{"incomplete via code (verified)", s.IncompleteViaCode, 180},
		{"incomplete via code (detected)", s.DetectedViaCode, 195},
		{"incorrect apps", s.IncorrectApps, 4},
		{"incorrect via description", s.IncorrectViaDesc, 2},
		{"incorrect via code", s.IncorrectViaCode, 4},
		{"inconsistent apps", s.InconsistentApps, 75},
		{"missed records", s.MissedInfoRecords, 234},
		{"retained records", s.RetainedRecords, 32},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestTableIIIMatchesPaper pins the Table III permission counts.
func TestTableIIIMatchesPaper(t *testing.T) {
	rows := paperCorpus(t).TableIII()
	t.Logf("\n%s", RenderTableIII(rows))
	want := map[string]int{
		sensitive.PermCoarseLocation: 14,
		sensitive.PermFineLocation:   19,
		sensitive.PermCamera:         6,
		sensitive.PermGetAccounts:    11,
		sensitive.PermReadCalendar:   2,
		sensitive.PermReadContacts:   12,
		sensitive.PermWriteContacts:  1,
	}
	got := map[string]int{}
	for _, row := range rows {
		got[row.Permission] = row.Apps
	}
	for perm, n := range want {
		if got[perm] != n {
			t.Errorf("%s = %d, want %d", perm, got[perm], n)
		}
	}
	for perm, n := range got {
		if _, ok := want[perm]; !ok {
			t.Errorf("unexpected permission %s (%d apps)", perm, n)
		}
	}
}

// TestFig13MatchesPlan pins the missed-information distribution: 234
// records, location most common, 32 retained.
func TestFig13MatchesPlan(t *testing.T) {
	rows := paperCorpus(t).Fig13()
	t.Logf("\n%s", RenderFig13(rows))
	total, retained := 0, 0
	for _, row := range rows {
		total += row.Records
		retained += row.Retained
	}
	if total != 234 {
		t.Errorf("records = %d, want 234", total)
	}
	if retained != 32 {
		t.Errorf("retained = %d, want 32", retained)
	}
	if rows[0].Info != sensitive.InfoLocation {
		t.Errorf("most-missed info = %s, want location", rows[0].Info)
	}
}

// TestTableIVMatchesPaper pins the inconsistency metrics: CUR detected
// 46 (TP 41, FP 5), disclose detected 43 (TP 39, FP 4); precision
// 89.1% / 90.7%; recall in the low 90s.
func TestTableIVMatchesPaper(t *testing.T) {
	tab := paperCorpus(t).ComputeTableIV()
	t.Logf("\n%s", RenderTableIV(tab))
	if tab.CUR.TP != 41 || tab.CUR.FP != 5 || tab.CUR.FN != 4 {
		t.Errorf("CUR = %+v, want TP 41 FP 5 FN 4", tab.CUR)
	}
	if tab.Disclose.TP != 39 || tab.Disclose.FP != 4 || tab.Disclose.FN != 3 {
		t.Errorf("disclose = %+v, want TP 39 FP 4 FN 3", tab.Disclose)
	}
	if p := tab.CUR.Precision(); p < 0.88 || p > 0.90 {
		t.Errorf("CUR precision = %.3f, want ≈ 0.891", p)
	}
	if p := tab.Disclose.Precision(); p < 0.89 || p > 0.92 {
		t.Errorf("disclose precision = %.3f, want ≈ 0.907", p)
	}
}

// TestRecallSample mirrors the paper's 200-app sampling: recall inside
// the sample should track the full-corpus recall (low-to-mid 90s).
func TestRecallSample(t *testing.T) {
	res := paperCorpus(t)
	s := res.RunRecallSample(2016, 200)
	t.Logf("\n%s", s.Render())
	if s.SampleSize != 200 {
		t.Fatalf("sample size = %d", s.SampleSize)
	}
	// With only ~52 truly inconsistent apps in 1,197, a 200-app sample
	// holds a handful; recall must be 0 or high, never mid-range noise
	// caused by detection bugs.
	if actual := s.CUR.TP + s.CUR.FN; actual > 0 {
		if r := s.CUR.Recall(); r < 0.5 {
			t.Errorf("CUR sample recall = %.2f with %d actual", r, actual)
		}
	}
	if actual := s.Disclose.TP + s.Disclose.FN; actual > 0 {
		if r := s.Disclose.Recall(); r < 0.5 {
			t.Errorf("disclose sample recall = %.2f with %d actual", r, actual)
		}
	}
	// Oversized requests clamp.
	if s2 := res.RunRecallSample(1, 10_000); s2.SampleSize != len(res.Reports) {
		t.Errorf("clamp failed: %d", s2.SampleSize)
	}
}

// TestThresholdSweepShape: precision is non-decreasing and recall
// non-increasing as the threshold rises (within small tolerance), with
// the paper's 0.67 keeping both in the high 80s/low 90s.
func TestThresholdSweepShape(t *testing.T) {
	ds, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	points := RunThresholdSweep(ds, DefaultThresholds())
	t.Logf("\n%s", RenderThresholdSweep(points))
	for i := 1; i < len(points); i++ {
		if points[i].CUR.Precision() < points[i-1].CUR.Precision()-1e-9 {
			t.Errorf("CUR precision dropped from %.3f to %.3f at threshold %.2f",
				points[i-1].CUR.Precision(), points[i].CUR.Precision(), points[i].Threshold)
		}
		if points[i].CUR.Recall() > points[i-1].CUR.Recall()+1e-9 {
			t.Errorf("CUR recall rose from %.3f to %.3f at threshold %.2f",
				points[i-1].CUR.Recall(), points[i].CUR.Recall(), points[i].Threshold)
		}
	}
	// The paper's operating point.
	for _, p := range points {
		if p.Threshold == 0.67 {
			if pr := p.CUR.Precision(); pr < 0.85 || pr > 0.95 {
				t.Errorf("CUR precision at 0.67 = %.3f", pr)
			}
		}
	}
}

// TestIncompleteFPsAreColonApps: all 15 raw-detection false positives
// must come from the colon-extraction failure mode, as §V-C reports.
func TestIncompleteFPsAreColonApps(t *testing.T) {
	res := paperCorpus(t)
	fps := 0
	for i, rep := range res.Reports {
		truth := res.Truths[i]
		if len(rep.IncompleteVia(core.ViaCode)) > 0 && !truth.IncompleteCode {
			fps++
			if !truth.Plan.ColonFP {
				t.Errorf("app %d is a non-colon incomplete FP: %s", i, rep.App)
			}
		}
	}
	if fps != 15 {
		t.Errorf("incomplete FPs = %d, want 15", fps)
	}
}

// TestFig12CSV: the CSV export is well-formed.
func TestFig12CSV(t *testing.T) {
	data := synth.GenerateFig12(synth.DefaultFig12Config())
	r := RunFig12(data)
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "n,fn_rate,fp_rate" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(r.Points)+1 {
		t.Fatalf("lines = %d, points = %d", len(lines), len(r.Points))
	}
}
