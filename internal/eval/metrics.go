// Package eval runs PPChecker over the synthetic corpus and
// regenerates every table and figure of the paper's §V, comparing
// detection output against the generator's ground truth with the same
// metrics the paper uses (precision, recall, F1).
package eval

import "fmt"

// Confusion is a binary confusion count.
type Confusion struct {
	TP, FP, FN int
}

// Precision = TP / (TP + FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall = TP / (TP + FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Detected = TP + FP.
func (c Confusion) Detected() int { return c.TP + c.FP }

// String renders the confusion with derived metrics.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d P=%.1f%% R=%.1f%% F1=%.1f%%",
		c.TP, c.FP, c.FN, 100*c.Precision(), 100*c.Recall(), 100*c.F1())
}
