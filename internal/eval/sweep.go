package eval

import (
	"fmt"
	"strings"

	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// ThresholdPoint is one sample of the ESA-threshold sweep.
type ThresholdPoint struct {
	Threshold float64
	CUR       Confusion
	Disclose  Confusion
}

// RunThresholdSweep re-evaluates the corpus at each similarity
// threshold, extending the paper's fixed-0.67 choice into a
// sensitivity analysis: low thresholds admit over-matches (lower
// precision), high thresholds reject paraphrases (lower recall).
func RunThresholdSweep(ds *synth.Dataset, thresholds []float64) []ThresholdPoint {
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		res := EvaluateCorpus(ds, core.WithESAThreshold(th))
		tab := res.ComputeTableIV()
		out = append(out, ThresholdPoint{Threshold: th, CUR: tab.CUR, Disclose: tab.Disclose})
	}
	return out
}

// DefaultThresholds spans the sweep around the paper's 0.67.
func DefaultThresholds() []float64 { return []float64{0.5, 0.6, 0.67, 0.75, 0.85, 0.95} }

// RenderThresholdSweep prints the sweep as a table.
func RenderThresholdSweep(points []ThresholdPoint) string {
	var b strings.Builder
	b.WriteString("ESA threshold sweep (inconsistency detection):\n")
	fmt.Fprintf(&b, "%10s %28s %28s\n", "threshold", "CUR (P / R / F1)", "disclose (P / R / F1)")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f %9.1f%% /%6.1f%% /%6.1f%% %9.1f%% /%6.1f%% /%6.1f%%\n",
			p.Threshold,
			100*p.CUR.Precision(), 100*p.CUR.Recall(), 100*p.CUR.F1(),
			100*p.Disclose.Precision(), 100*p.Disclose.Recall(), 100*p.Disclose.F1())
	}
	return b.String()
}
