package eval

import (
	"context"
	"path/filepath"
	"testing"

	"ppchecker/internal/bundle"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

// TestParallelMatchesSerial: the worker-pool path produces identical
// reports to the serial path.
func TestParallelMatchesSerial(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	serial := EvaluateCorpus(ds)
	parallel := EvaluateCorpusParallel(ds, 4)
	if len(serial.Reports) != len(parallel.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(serial.Reports), len(parallel.Reports))
	}
	for i := range serial.Reports {
		if serial.Reports[i].Summary() != parallel.Reports[i].Summary() {
			t.Fatalf("app %d differs:\n%s\nvs\n%s", i,
				serial.Reports[i].Summary(), parallel.Reports[i].Summary())
		}
	}
	if serial.Summary() != parallel.Summary() {
		t.Fatalf("summaries differ: %+v vs %+v", serial.Summary(), parallel.Summary())
	}
}

// TestSharedLibCacheBoundsAnalyses: on a parallel instrumented run,
// the number of library-policy analyses performed is bounded by the
// number of unique policy texts — the whole point of the shared
// single-flight cache (a per-worker cache would do workers × unique).
func TestSharedLibCacheBoundsAnalyses(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.New()
	opts := DefaultRunOptions()
	opts.Workers = 4
	opts.Observer = observer
	_, stats, err := EvaluateCorpusRobust(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	analyses, ok := stats.Metrics.Counter("lib-policy-analyses")
	if !ok {
		t.Fatal("lib-policy-analyses counter missing from snapshot")
	}
	unique, ok := stats.Metrics.Counter("lib-policy-unique-texts")
	if !ok {
		t.Fatal("lib-policy-unique-texts counter missing from snapshot")
	}
	if unique == 0 {
		t.Fatal("corpus has no library policies; test is vacuous")
	}
	if analyses > unique {
		t.Fatalf("%d analyses for %d unique policy texts: cache not shared across workers", analyses, unique)
	}
	if hits, _ := stats.Metrics.Counter("esa-interpret-hits"); hits == 0 {
		t.Fatal("esa-interpret-hits counter absent or zero on a corpus run")
	}
}

// TestParallelWorkerClamping: degenerate worker counts fall back
// safely.
func TestParallelWorkerClamping(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	small := &synth.Dataset{Apps: ds.Apps[:3], LibPolicies: ds.LibPolicies}
	for _, workers := range []int{-1, 0, 1, 100} {
		res := EvaluateCorpusParallel(small, workers)
		if len(res.Reports) != 3 {
			t.Fatalf("workers=%d: %d reports", workers, len(res.Reports))
		}
	}
}

// TestEvaluateCorpusDir: evaluation from a corpus written to disk
// matches in-memory evaluation.
func TestEvaluateCorpusDir(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	small := &synth.Dataset{Apps: ds.Apps[:25], LibPolicies: ds.LibPolicies}
	dir := t.TempDir()
	if err := bundle.WriteDataset(small, dir); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := EvaluateCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDisk.Reports) != 25 {
		t.Fatalf("reports = %d", len(fromDisk.Reports))
	}
	inMem := EvaluateCorpus(small)
	// Disk order is lexicographic by package; compare per-app by name.
	bySummary := map[string]string{}
	for _, r := range inMem.Reports {
		bySummary[r.App] = r.Summary()
	}
	for _, r := range fromDisk.Reports {
		if want, ok := bySummary[r.App]; !ok || want != r.Summary() {
			t.Fatalf("app %s differs from in-memory result", r.App)
		}
	}
	if _, err := EvaluateCorpusDir(filepath.Join(dir, "nonexistent")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
