package eval

import (
	"fmt"
	"io"
	"strings"

	"ppchecker/internal/patterns"
	"ppchecker/internal/synth"
)

// Fig12Point is one sample of the pattern-count sweep.
type Fig12Point struct {
	N      int
	FNRate float64
	FPRate float64
}

// Fig12Result is the §V-B experiment outcome.
type Fig12Result struct {
	Points []Fig12Point
	// TotalPatterns is the number of patterns the bootstrap mined.
	TotalPatterns int
	// BestN is the largest pattern count minimizing FN+FP — the
	// paper's selection rule resolved over the plateau.
	BestN  int
	BestFN float64
	BestFP float64
}

// RunFig12 mines patterns from the corpus, ranks them against the
// labelled sets, and sweeps the pattern count n, reproducing Fig. 12.
func RunFig12(data *synth.Fig12Data) *Fig12Result {
	corpus := patterns.ParseCorpus(data.Corpus)
	miner := patterns.NewMiner()
	pats := miner.Mine(corpus)
	pos := patterns.ParseCorpus(data.Positive)
	neg := patterns.ParseCorpus(data.Negative)
	scored := patterns.Rank(pats, pos, neg)

	// Realized pattern keys per labelled sentence.
	keysOf := func(set []patterns.ParsedSentence) []map[string]bool {
		out := make([]map[string]bool, len(set))
		for i, ps := range set {
			ks := map[string]bool{}
			for _, c := range patterns.Extract(ps.Parse) {
				ks[c.Pattern.Key()] = true
			}
			out[i] = ks
		}
		return out
	}
	posKeys := keysOf(pos)
	negKeys := keysOf(neg)

	// key → labelled sentence indices, for incremental sweeping.
	posIdx := map[string][]int{}
	negIdx := map[string][]int{}
	for i, ks := range posKeys {
		for k := range ks {
			posIdx[k] = append(posIdx[k], i)
		}
	}
	for i, ks := range negKeys {
		for k := range ks {
			negIdx[k] = append(negIdx[k], i)
		}
	}

	res := &Fig12Result{TotalPatterns: len(scored)}
	posMatched := make([]bool, len(pos))
	negMatched := make([]bool, len(neg))
	nPos, nNeg := 0, 0
	minSum := 2.0
	for n := 1; n <= len(scored); n++ {
		key := scored[n-1].Pattern.Key()
		for _, i := range posIdx[key] {
			if !posMatched[i] {
				posMatched[i] = true
				nPos++
			}
		}
		for _, i := range negIdx[key] {
			if !negMatched[i] {
				negMatched[i] = true
				nNeg++
			}
		}
		fn := 1 - float64(nPos)/float64(len(pos))
		fp := float64(nNeg) / float64(len(neg))
		res.Points = append(res.Points, Fig12Point{N: n, FNRate: fn, FPRate: fp})
		if fn+fp <= minSum {
			minSum = fn + fp
			res.BestN = n
			res.BestFN = fn
			res.BestFP = fp
		}
	}
	return res
}

// RenderFig12 prints the sweep as a text chart sampled every step
// points, with the optimum marked.
func RenderFig12(r *Fig12Result, step int) string {
	var b strings.Builder
	b.WriteString("Fig. 12: false positive rate and false negative rate vs number of patterns\n")
	fmt.Fprintf(&b, "%6s %8s %8s\n", "n", "FN-rate", "FP-rate")
	for i, p := range r.Points {
		if i%step != 0 && p.N != r.BestN && i != len(r.Points)-1 {
			continue
		}
		mark := ""
		if p.N == r.BestN {
			mark = "  <= selected (min FN+FP)"
		}
		fmt.Fprintf(&b, "%6d %7.1f%% %7.1f%%%s\n", p.N, 100*p.FNRate, 100*p.FPRate, mark)
	}
	fmt.Fprintf(&b, "selected n = %d with detection rate %.1f%% (FN %.1f%%) and FP %.1f%%\n",
		r.BestN, 100*(1-r.BestFN), 100*r.BestFN, 100*r.BestFP)
	return b.String()
}

// WriteCSV emits the sweep as CSV (n, fn_rate, fp_rate) for external
// plotting of the actual figure.
func (r *Fig12Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "n,fn_rate,fp_rate"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%.4f\n", p.N, p.FNRate, p.FPRate); err != nil {
			return err
		}
	}
	return nil
}
