package eval

import (
	"math"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// conformanceTol is the pinned absolute tolerance for comparing the
// measured precision/recall against the paper's published figures.
// The synthetic corpus reproduces the paper's confusion matrices
// exactly, so the slack only absorbs rounding in the published
// percentages, not detector drift.
const conformanceTol = 0.015

// TestPaperConformance checks precision and recall for each of the
// three problem types individually (incomplete split by evidence
// stream, inconsistent split by sentence group as in Table IV)
// against the paper's figures:
//
//   - incomplete via description: every Table III detection was
//     verified (precision 1.0)
//   - incomplete via code: 180 of 195 detections verified (§V-C,
//     precision 92.3%)
//   - incorrect: 4 of 6 detections verified (§V-D)
//   - inconsistent CUR: TP 41 / FP 5 / FN 4 (Table IV, precision
//     89.1%, recall 91.1%)
//   - inconsistent disclose: TP 39 / FP 4 / FN 3 (Table IV, precision
//     90.7%, recall 92.9%)
//
// A detector perturbation that shifts any matrix shows up here as a
// precision/recall excursion beyond the pinned tolerance.
func TestPaperConformance(t *testing.T) {
	res := paperCorpus(t)
	tab := res.ComputeTableIV()

	cases := []struct {
		name              string
		m                 Confusion
		precision, recall float64
	}{
		{"incomplete-description", confusion(res,
			func(r *core.Report) bool { return len(r.IncompleteVia(core.ViaDescription)) > 0 },
			func(g *synth.GroundTruth) bool { return g.IncompleteDesc },
		), 1.0, 1.0},
		{"incomplete-code", confusion(res,
			func(r *core.Report) bool { return len(r.IncompleteVia(core.ViaCode)) > 0 },
			func(g *synth.GroundTruth) bool { return g.IncompleteCode },
		), 180.0 / 195.0, 1.0},
		{"incorrect", confusion(res,
			func(r *core.Report) bool { return len(r.Incorrect) > 0 },
			func(g *synth.GroundTruth) bool { return g.Incorrect },
		), 4.0 / 6.0, 1.0},
		{"inconsistent-cur", tab.CUR, 41.0 / 46.0, 41.0 / 45.0},
		{"inconsistent-disclose", tab.Disclose, 39.0 / 43.0, 39.0 / 42.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, r := tc.m.Precision(), tc.m.Recall()
			t.Logf("TP %d FP %d FN %d — precision %.3f (paper %.3f), recall %.3f (paper %.3f)",
				tc.m.TP, tc.m.FP, tc.m.FN, p, tc.precision, r, tc.recall)
			if math.Abs(p-tc.precision) > conformanceTol {
				t.Errorf("precision = %.3f, paper reports %.3f (tolerance %.3f)",
					p, tc.precision, conformanceTol)
			}
			if math.Abs(r-tc.recall) > conformanceTol {
				t.Errorf("recall = %.3f, paper reports %.3f (tolerance %.3f)",
					r, tc.recall, conformanceTol)
			}
		})
	}
}

// confusion builds the per-app confusion matrix for one problem type
// from a detection predicate over reports and a label predicate over
// the ground truth.
func confusion(res *CorpusResult, detected func(*core.Report) bool, actual func(*synth.GroundTruth) bool) Confusion {
	var m Confusion
	for i, rep := range res.Reports {
		d, a := detected(rep), actual(&res.Truths[i])
		switch {
		case d && a:
			m.TP++
		case d && !a:
			m.FP++
		case !d && a:
			m.FN++
		}
	}
	return m
}
