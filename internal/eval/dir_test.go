package eval

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

// TestEvaluateCorpusDirToleratesCorruptBundle: one Corruptor-damaged
// bundle on disk degrades its own report — the other apps evaluate
// exactly as before and the run no longer aborts.
func TestEvaluateCorpusDirToleratesCorruptBundle(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	small := &synth.Dataset{Apps: ds.Apps[:20], LibPolicies: ds.LibPolicies}
	dir := t.TempDir()
	if err := bundle.WriteDataset(small, dir); err != nil {
		t.Fatal(err)
	}
	base, err := EvaluateCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Damage one bundle's APK with the fault-injection harness.
	victim := small.Apps[7].App.Name
	if err := synth.NewCorruptor(42).CorruptBundle(
		filepath.Join(dir, "apps", victim), synth.FaultDexTruncated); err != nil {
		t.Fatal(err)
	}

	res, err := EvaluateCorpusDir(dir)
	if err != nil {
		t.Fatalf("corrupt bundle aborted the run: %v", err)
	}
	if len(res.Reports) != len(base.Reports) {
		t.Fatalf("report count changed: %d vs %d", len(res.Reports), len(base.Reports))
	}
	degraded := 0
	for i, rep := range res.Reports {
		if rep.App == victim {
			degraded++
			if !rep.Partial {
				t.Errorf("corrupted app %s not marked Partial", victim)
			}
			if !rep.DegradedStage(core.StageDecode) && !rep.DegradedStage(core.StageRead) {
				t.Errorf("corrupted app degraded under wrong stage: %v", rep.Degraded)
			}
			continue
		}
		if rep.Partial {
			t.Errorf("untouched app %s marked Partial: %v", rep.App, rep.Degraded)
		}
		if got, want := rep.Summary(), base.Reports[i].Summary(); got != want {
			t.Errorf("untouched app %s changed results:\n%s\nvs\n%s", rep.App, got, want)
		}
	}
	if degraded != 1 {
		t.Fatalf("victim report missing: %d matches", degraded)
	}
}

// TestEvaluateCorpusDirMissingFiles: a bundle with its policy deleted
// (a lenient-read failure, not a decode failure) degrades under
// bundle-read while the rest of the corpus stays clean.
func TestEvaluateCorpusDirMissingFiles(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	small := &synth.Dataset{Apps: ds.Apps[:6], LibPolicies: ds.LibPolicies}
	dir := t.TempDir()
	if err := bundle.WriteDataset(small, dir); err != nil {
		t.Fatal(err)
	}
	victim := small.Apps[2].App.Name
	if err := os.Remove(filepath.Join(dir, "apps", victim, "policy.html")); err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Reports {
		if rep.App == victim {
			if !rep.DegradedStage(core.StageRead) {
				t.Fatalf("missing policy not recorded under bundle-read: %v", rep.Degraded)
			}
		} else if rep.Partial {
			t.Fatalf("healthy app %s degraded", rep.App)
		}
	}
}

// TestRunStatsMetricsAggregation: an instrumented robust run aggregates
// per-stage metrics into RunStats.Metrics — stage run counts match the
// corpus size, per-app spans cover every app, and the latency columns
// are populated and internally consistent.
func TestRunStatsMetricsAggregation(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	small := &synth.Dataset{Apps: ds.Apps[:40], LibPolicies: ds.LibPolicies}
	opts := DefaultRunOptions()
	opts.Workers = 4
	opts.Observer = obs.New()
	_, stats, err := EvaluateCorpusRobust(context.Background(), small, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.Metrics
	if m == nil {
		t.Fatal("RunStats.Metrics not populated")
	}
	apps := int64(len(small.Apps))
	for _, stage := range []string{
		string(core.StageExtract), string(core.StagePolicy),
		string(core.StageDesc), string(core.StageDetect),
		string(core.StageRun),
	} {
		st, ok := m.Stage(stage)
		if !ok {
			t.Errorf("stage %s missing from metrics", stage)
			continue
		}
		if st.Runs != apps {
			t.Errorf("stage %s runs = %d, want %d", stage, st.Runs, apps)
		}
		if st.Errors != 0 {
			t.Errorf("stage %s errors = %d on a clean corpus", stage, st.Errors)
		}
		if st.Max <= 0 || st.P50 <= 0 || st.P95 < st.P50 || st.Max < st.P95 {
			t.Errorf("stage %s latency columns inconsistent: %+v", stage, st)
		}
		if st.Total < st.Max {
			t.Errorf("stage %s total %v < max %v", stage, st.Total, st.Max)
		}
	}
	// The per-app corpus-run span dominates: its total must be at least
	// the summed stage totals for the pipeline stages it encloses.
	run, _ := m.Stage(string(core.StageRun))
	if enclosed, _ := m.Stage(string(core.StagePolicy)); run.Total < enclosed.Total {
		t.Errorf("corpus-run total %v < policy-nlp total %v", run.Total, enclosed.Total)
	}
	// Un-instrumented runs leave Metrics nil.
	_, plain, err := EvaluateCorpusRobust(context.Background(), small, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Fatal("Metrics non-nil without an observer")
	}
}
