package eval

import (
	"fmt"
	"sort"
	"strings"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/synth"
)

// CorpusResult holds the detector output and ground truth for every
// corpus app; all §V tables derive from it.
type CorpusResult struct {
	Reports []*core.Report
	Truths  []synth.GroundTruth
}

// EvaluateCorpus runs one checker over the whole dataset.
func EvaluateCorpus(ds *synth.Dataset, opts ...core.CheckerOption) *CorpusResult {
	checker := core.NewChecker(opts...)
	res := &CorpusResult{
		Reports: make([]*core.Report, 0, len(ds.Apps)),
		Truths:  make([]synth.GroundTruth, 0, len(ds.Apps)),
	}
	for _, ga := range ds.Apps {
		res.Reports = append(res.Reports, checker.Check(ga.App))
		res.Truths = append(res.Truths, ga.Truth)
	}
	return res
}

// SummaryStats reproduces §V-F.
type SummaryStats struct {
	NumApps int
	// AppsWithProblem counts apps with at least one verified problem
	// (the paper's 282 / 23.6%).
	AppsWithProblem int
	// IncompleteApps is the verified incomplete count (222): desc ∪ code.
	IncompleteApps    int
	IncompleteViaDesc int // detected via description (64)
	IncompleteViaCode int // verified via code (180)
	DetectedViaCode   int // raw detections via code (195)
	IncorrectApps     int // verified (4)
	IncorrectViaDesc  int // detected via description (2)
	IncorrectViaCode  int // verified via code (4)
	DetectedIncorrect int // raw incorrect detections (6 incl. context FPs)
	InconsistentApps  int // verified (75)
	MissedInfoRecords int // verified missed-info records (234)
	RetainedRecords   int // retained subset (32)
}

// Summary computes §V-F over the corpus.
func (r *CorpusResult) Summary() SummaryStats {
	s := SummaryStats{NumApps: len(r.Reports)}
	for i, rep := range r.Reports {
		truth := r.Truths[i]
		descDet := len(rep.IncompleteVia(core.ViaDescription)) > 0
		codeDet := len(rep.IncompleteVia(core.ViaCode)) > 0
		descOK := descDet && truth.IncompleteDesc
		codeOK := codeDet && truth.IncompleteCode
		if descOK {
			s.IncompleteViaDesc++
		}
		if codeDet {
			s.DetectedViaCode++
		}
		if codeOK {
			s.IncompleteViaCode++
			for _, f := range rep.IncompleteVia(core.ViaCode) {
				s.MissedInfoRecords++
				if f.Retained {
					s.RetainedRecords++
				}
			}
		}
		incomplete := descOK || codeOK
		if incomplete {
			s.IncompleteApps++
		}
		incorrectDet := len(rep.Incorrect) > 0
		if incorrectDet {
			s.DetectedIncorrect++
		}
		incorrect := incorrectDet && truth.Incorrect
		if incorrect {
			s.IncorrectApps++
			if len(rep.IncorrectVia(core.ViaDescription)) > 0 {
				s.IncorrectViaDesc++
			}
			if len(rep.IncorrectVia(core.ViaCode)) > 0 {
				s.IncorrectViaCode++
			}
		}
		inconsistent := false
		for _, f := range rep.Inconsistent {
			if f.Disclose() && truth.InconsistDisc {
				inconsistent = true
			}
			if !f.Disclose() && truth.InconsistCUR {
				inconsistent = true
			}
		}
		if inconsistent {
			s.InconsistentApps++
		}
		if incomplete || incorrect || inconsistent {
			s.AppsWithProblem++
		}
	}
	return s
}

// IncompleteCodePrecision is the §V-C manual-verification precision:
// verified true positives over raw code detections (paper: 180/195 =
// 92.3%).
func (s SummaryStats) IncompleteCodePrecision() float64 {
	if s.DetectedViaCode == 0 {
		return 0
	}
	return float64(s.IncompleteViaCode) / float64(s.DetectedViaCode)
}

// Render prints the summary in the paper's §V-F phrasing.
func (s SummaryStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Apps analyzed: %d\n", s.NumApps)
	fmt.Fprintf(&b, "Apps with at least one problem: %d (%.1f%%)\n",
		s.AppsWithProblem, 100*float64(s.AppsWithProblem)/float64(s.NumApps))
	fmt.Fprintf(&b, "  incomplete policies: %d (via description %d, via code %d; raw code detections %d, precision %.1f%%)\n",
		s.IncompleteApps, s.IncompleteViaDesc, s.IncompleteViaCode,
		s.DetectedViaCode, 100*s.IncompleteCodePrecision())
	fmt.Fprintf(&b, "    missed-information records: %d (retained: %d)\n",
		s.MissedInfoRecords, s.RetainedRecords)
	fmt.Fprintf(&b, "  incorrect policies: %d (via description %d, via code %d; raw detections %d)\n",
		s.IncorrectApps, s.IncorrectViaDesc, s.IncorrectViaCode, s.DetectedIncorrect)
	fmt.Fprintf(&b, "  inconsistent policies: %d\n", s.InconsistentApps)
	return b.String()
}

// PermCount is one Table III row.
type PermCount struct {
	Permission string
	Apps       int
}

// TableIII counts detected desc-incomplete apps per permission.
func (r *CorpusResult) TableIII() []PermCount {
	counts := map[string]int{}
	for i, rep := range r.Reports {
		if !r.Truths[i].IncompleteDesc {
			continue
		}
		perms := map[string]bool{}
		for _, f := range rep.IncompleteVia(core.ViaDescription) {
			for _, p := range f.Permissions {
				perms[p] = true
			}
		}
		for p := range perms {
			counts[p]++
		}
	}
	var rows []PermCount
	for p, n := range counts {
		rows = append(rows, PermCount{Permission: p, Apps: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Permission < rows[j].Permission })
	return rows
}

// RenderTableIII prints Table III.
func RenderTableIII(rows []PermCount) string {
	var b strings.Builder
	b.WriteString("Table III: permissions leading to incomplete privacy policy\n")
	b.WriteString(fmt.Sprintf("%-50s %s\n", "Permission", "Num. of questionable apps"))
	total := 0
	for _, row := range rows {
		fmt.Fprintf(&b, "%-50s %d\n", row.Permission, row.Apps)
		total += row.Apps
	}
	fmt.Fprintf(&b, "%-50s %d\n", "(permission records total)", total)
	return b.String()
}

// InfoCount is one Fig. 13 bar.
type InfoCount struct {
	Info     sensitive.Info
	Records  int
	Retained int
}

// Fig13 tallies the missed-information distribution over verified
// code-incomplete apps.
func (r *CorpusResult) Fig13() []InfoCount {
	records := map[sensitive.Info]int{}
	retained := map[sensitive.Info]int{}
	for i, rep := range r.Reports {
		if !r.Truths[i].IncompleteCode {
			continue
		}
		for _, f := range rep.IncompleteVia(core.ViaCode) {
			records[f.Info]++
			if f.Retained {
				retained[f.Info]++
			}
		}
	}
	var rows []InfoCount
	for info, n := range records {
		rows = append(rows, InfoCount{Info: info, Records: n, Retained: retained[info]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Records != rows[j].Records {
			return rows[i].Records > rows[j].Records
		}
		return rows[i].Info < rows[j].Info
	})
	return rows
}

// RenderFig13 prints the distribution as a text bar chart.
func RenderFig13(rows []InfoCount) string {
	var b strings.Builder
	b.WriteString("Fig. 13: distribution of missed information (records; * = retained subset)\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-20s %3d %s\n", row.Info, row.Records,
			strings.Repeat("#", row.Records)+strings.Repeat("*", row.Retained))
	}
	return b.String()
}

// TableIV holds the inconsistency-detection metrics.
type TableIV struct {
	CUR      Confusion // Sents^{collect,use,retain}
	Disclose Confusion // Sents^{disclose}
}

// ComputeTableIV classifies per-app inconsistency detections by group.
func (r *CorpusResult) ComputeTableIV() TableIV {
	var t TableIV
	for i, rep := range r.Reports {
		truth := r.Truths[i]
		detCUR, detDisc := false, false
		for _, f := range rep.Inconsistent {
			if f.Disclose() {
				detDisc = true
			} else {
				detCUR = true
			}
		}
		classify(&t.CUR, detCUR, truth.InconsistCUR)
		classify(&t.Disclose, detDisc, truth.InconsistDisc)
	}
	return t
}

func classify(c *Confusion, detected, truth bool) {
	switch {
	case detected && truth:
		c.TP++
	case detected && !truth:
		c.FP++
	case !detected && truth:
		c.FN++
	}
}

// RenderTableIV prints Table IV.
func RenderTableIV(t TableIV) string {
	var b strings.Builder
	b.WriteString("Table IV: performance of detecting inconsistent privacy policy\n")
	fmt.Fprintf(&b, "%-28s detected=%2d %s\n", "Sents{collect,use,retain}:", t.CUR.Detected(), t.CUR)
	fmt.Fprintf(&b, "%-28s detected=%2d %s\n", "Sents{disclose}:", t.Disclose.Detected(), t.Disclose)
	return b.String()
}
