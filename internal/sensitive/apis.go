// Package sensitive carries the data tables of §III-C2 of the paper:
// the 68 sensitive APIs with the private information they expose, the
// content-provider URI strings and URI fields with their PScout
// permission mapping, the permission→information map used by the
// description analysis, and the sink APIs (log, file, network, SMS,
// Bluetooth) used by the taint analysis.
package sensitive

import (
	"fmt"

	"ppchecker/internal/dex"
)

// Info names the private-information types, matching the ESA concept
// titles so resource phrases from policies and API findings compare
// directly.
type Info string

// The information inventory.
const (
	InfoLocation  Info = "location"
	InfoContact   Info = "contact"
	InfoPhone     Info = "phone number"
	InfoDeviceID  Info = "device identifier"
	InfoIPAddress Info = "ip address"
	InfoCookie    Info = "cookie"
	InfoEmail     Info = "email address"
	InfoAccount   Info = "account"
	InfoCalendar  Info = "calendar"
	InfoCamera    Info = "camera"
	InfoAudio     Info = "audio"
	InfoSMS       Info = "sms"
	InfoCallLog   Info = "call log"
	InfoAppList   Info = "app list"
	InfoBrowsing  Info = "browsing history"
	InfoWifi      Info = "wifi"
	InfoBluetooth Info = "bluetooth"
)

// AllInfos returns the full information inventory, in declaration
// order. Callers that precompute per-information state (e.g. the
// checker's precompiled ESA vectors) iterate this instead of
// hard-coding the list.
func AllInfos() []Info {
	return []Info{
		InfoLocation, InfoContact, InfoPhone, InfoDeviceID, InfoIPAddress,
		InfoCookie, InfoEmail, InfoAccount, InfoCalendar, InfoCamera,
		InfoAudio, InfoSMS, InfoCallLog, InfoAppList, InfoBrowsing,
		InfoWifi, InfoBluetooth,
	}
}

// API is one sensitive API with its mapping.
type API struct {
	Ref        dex.MethodRef
	Info       Info
	Permission string // "" when no permission guards the API
}

// tableErrs collects malformed method-ref literals found while building
// the package tables. A bad literal no longer panics at init: the entry
// parses to the zero MethodRef, is dropped from every index, and the
// problem is reported through TableErrors so callers (and tests) can
// surface it.
var tableErrs []error

func ref(s string) dex.MethodRef {
	r, err := dex.ParseMethodRef(s)
	if err != nil {
		tableErrs = append(tableErrs, fmt.Errorf("sensitive: bad method ref literal %q: %w", s, err))
		return dex.MethodRef{}
	}
	return r
}

// TableErrors returns the errors encountered while parsing the built-in
// API and sink tables. A correct build returns nil; entries listed here
// were skipped rather than crashing package initialization.
func TableErrors() []error { return append([]error(nil), tableErrs...) }

// apis is the 68-entry sensitive API table.
var apis = []API{
	// --- location (10) ---
	{ref("Landroid/location/LocationManager;->getLastKnownLocation(Ljava/lang/String;)Landroid/location/Location;"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/LocationManager;->requestLocationUpdates(Ljava/lang/String;JFLandroid/location/LocationListener;)V"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/LocationManager;->getBestProvider(Landroid/location/Criteria;Z)Ljava/lang/String;"), InfoLocation, PermCoarseLocation},
	{ref("Landroid/location/Location;->getLatitude()D"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/Location;->getLongitude()D"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/Location;->getAltitude()D"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/Location;->getAccuracy()F"), InfoLocation, PermCoarseLocation},
	{ref("Landroid/telephony/TelephonyManager;->getCellLocation()Landroid/telephony/CellLocation;"), InfoLocation, PermCoarseLocation},
	{ref("Lcom/google/android/gms/location/FusedLocationProviderApi;->getLastLocation(Lcom/google/android/gms/common/api/GoogleApiClient;)Landroid/location/Location;"), InfoLocation, PermFineLocation},
	{ref("Landroid/location/Geocoder;->getFromLocation(DDI)Ljava/util/List;"), InfoLocation, PermFineLocation},
	// --- device identifier (8) ---
	{ref("Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;"), InfoDeviceID, PermPhoneState},
	{ref("Landroid/telephony/TelephonyManager;->getImei()Ljava/lang/String;"), InfoDeviceID, PermPhoneState},
	{ref("Landroid/telephony/TelephonyManager;->getSubscriberId()Ljava/lang/String;"), InfoDeviceID, PermPhoneState},
	{ref("Landroid/telephony/TelephonyManager;->getSimSerialNumber()Ljava/lang/String;"), InfoDeviceID, PermPhoneState},
	{ref("Landroid/provider/Settings$Secure;->getString(Landroid/content/ContentResolver;Ljava/lang/String;)Ljava/lang/String;"), InfoDeviceID, ""},
	{ref("Landroid/os/Build;->getSerial()Ljava/lang/String;"), InfoDeviceID, PermPhoneState},
	{ref("Landroid/bluetooth/BluetoothAdapter;->getAddress()Ljava/lang/String;"), InfoDeviceID, PermBluetooth},
	{ref("Landroid/net/wifi/WifiInfo;->getMacAddress()Ljava/lang/String;"), InfoDeviceID, PermWifiState},
	// --- phone number (3) ---
	{ref("Landroid/telephony/TelephonyManager;->getLine1Number()Ljava/lang/String;"), InfoPhone, PermPhoneState},
	{ref("Landroid/telephony/TelephonyManager;->getVoiceMailNumber()Ljava/lang/String;"), InfoPhone, PermPhoneState},
	{ref("Landroid/telephony/SmsMessage;->getOriginatingAddress()Ljava/lang/String;"), InfoPhone, PermReceiveSMS},
	// --- ip address (4) ---
	{ref("Ljava/net/NetworkInterface;->getInetAddresses()Ljava/util/Enumeration;"), InfoIPAddress, PermInternet},
	{ref("Ljava/net/InetAddress;->getHostAddress()Ljava/lang/String;"), InfoIPAddress, PermInternet},
	{ref("Landroid/net/wifi/WifiInfo;->getIpAddress()I"), InfoIPAddress, PermWifiState},
	{ref("Landroid/net/wifi/WifiManager;->getDhcpInfo()Landroid/net/DhcpInfo;"), InfoIPAddress, PermWifiState},
	// --- wifi (3) ---
	{ref("Landroid/net/wifi/WifiManager;->getConnectionInfo()Landroid/net/wifi/WifiInfo;"), InfoWifi, PermWifiState},
	{ref("Landroid/net/wifi/WifiManager;->getScanResults()Ljava/util/List;"), InfoWifi, PermWifiState},
	{ref("Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;"), InfoWifi, PermWifiState},
	// --- cookie (2) ---
	{ref("Landroid/webkit/CookieManager;->getCookie(Ljava/lang/String;)Ljava/lang/String;"), InfoCookie, ""},
	{ref("Landroid/webkit/CookieSyncManager;->sync()V"), InfoCookie, ""},
	// --- account / email (5) ---
	{ref("Landroid/accounts/AccountManager;->getAccounts()[Landroid/accounts/Account;"), InfoAccount, PermGetAccounts},
	{ref("Landroid/accounts/AccountManager;->getAccountsByType(Ljava/lang/String;)[Landroid/accounts/Account;"), InfoAccount, PermGetAccounts},
	{ref("Landroid/accounts/AccountManager;->getUserData(Landroid/accounts/Account;Ljava/lang/String;)Ljava/lang/String;"), InfoAccount, PermGetAccounts},
	{ref("Landroid/accounts/AccountManager;->getPassword(Landroid/accounts/Account;)Ljava/lang/String;"), InfoAccount, PermGetAccounts},
	{ref("Landroid/util/Patterns;->matchEmail(Ljava/lang/CharSequence;)Ljava/lang/String;"), InfoEmail, PermGetAccounts},
	// --- calendar (2) ---
	{ref("Landroid/provider/CalendarContract$Instances;->query(Landroid/content/ContentResolver;[Ljava/lang/String;JJ)Landroid/database/Cursor;"), InfoCalendar, PermReadCalendar},
	{ref("Landroid/provider/CalendarContract$Events;->query(Landroid/content/ContentResolver;)Landroid/database/Cursor;"), InfoCalendar, PermReadCalendar},
	// --- camera (5) ---
	{ref("Landroid/hardware/Camera;->open()Landroid/hardware/Camera;"), InfoCamera, PermCamera},
	{ref("Landroid/hardware/Camera;->open(I)Landroid/hardware/Camera;"), InfoCamera, PermCamera},
	{ref("Landroid/hardware/Camera;->takePicture(Landroid/hardware/Camera$ShutterCallback;Landroid/hardware/Camera$PictureCallback;Landroid/hardware/Camera$PictureCallback;)V"), InfoCamera, PermCamera},
	{ref("Landroid/hardware/camera2/CameraManager;->openCamera(Ljava/lang/String;Landroid/hardware/camera2/CameraDevice$StateCallback;Landroid/os/Handler;)V"), InfoCamera, PermCamera},
	{ref("Landroid/media/MediaRecorder;->setVideoSource(I)V"), InfoCamera, PermCamera},
	// --- audio (4) ---
	{ref("Landroid/media/MediaRecorder;->setAudioSource(I)V"), InfoAudio, PermRecordAudio},
	{ref("Landroid/media/MediaRecorder;->start()V"), InfoAudio, PermRecordAudio},
	{ref("Landroid/media/AudioRecord;->startRecording()V"), InfoAudio, PermRecordAudio},
	{ref("Landroid/media/AudioRecord;->read([BII)I"), InfoAudio, PermRecordAudio},
	// --- app list (5) ---
	{ref("Landroid/content/pm/PackageManager;->getInstalledPackages(I)Ljava/util/List;"), InfoAppList, ""},
	{ref("Landroid/content/pm/PackageManager;->getInstalledApplications(I)Ljava/util/List;"), InfoAppList, ""},
	{ref("Landroid/content/pm/PackageManager;->queryIntentActivities(Landroid/content/Intent;I)Ljava/util/List;"), InfoAppList, ""},
	{ref("Landroid/app/ActivityManager;->getRunningAppProcesses()Ljava/util/List;"), InfoAppList, ""},
	{ref("Landroid/app/ActivityManager;->getRunningTasks(I)Ljava/util/List;"), InfoAppList, PermGetTasks},
	// --- sms (3) ---
	{ref("Landroid/telephony/SmsMessage;->getMessageBody()Ljava/lang/String;"), InfoSMS, PermReceiveSMS},
	{ref("Landroid/telephony/SmsMessage;->getDisplayMessageBody()Ljava/lang/String;"), InfoSMS, PermReceiveSMS},
	{ref("Landroid/telephony/SmsMessage;->createFromPdu([B)Landroid/telephony/SmsMessage;"), InfoSMS, PermReceiveSMS},
	// --- telephony metadata mapped to device identifier (4) ---
	{ref("Landroid/telephony/TelephonyManager;->getNetworkOperatorName()Ljava/lang/String;"), InfoDeviceID, ""},
	{ref("Landroid/telephony/TelephonyManager;->getSimOperator()Ljava/lang/String;"), InfoDeviceID, ""},
	{ref("Landroid/telephony/TelephonyManager;->getNetworkCountryIso()Ljava/lang/String;"), InfoDeviceID, ""},
	{ref("Landroid/telephony/TelephonyManager;->getSimCountryIso()Ljava/lang/String;"), InfoDeviceID, ""},
	// --- bluetooth (2) ---
	{ref("Landroid/bluetooth/BluetoothAdapter;->getBondedDevices()Ljava/util/Set;"), InfoBluetooth, PermBluetooth},
	{ref("Landroid/bluetooth/BluetoothDevice;->getName()Ljava/lang/String;"), InfoBluetooth, PermBluetooth},
	// --- contact helpers (2) ---
	{ref("Landroid/provider/ContactsContract$Contacts;->getLookupUri(Landroid/content/ContentResolver;Landroid/net/Uri;)Landroid/net/Uri;"), InfoContact, PermReadContacts},
	{ref("Landroid/provider/ContactsContract$PhoneLookup;->lookup(Landroid/content/ContentResolver;Ljava/lang/String;)Landroid/database/Cursor;"), InfoContact, PermReadContacts},
	// --- browsing history (2) ---
	{ref("Landroid/webkit/WebView;->copyBackForwardList()Landroid/webkit/WebBackForwardList;"), InfoBrowsing, ""},
	{ref("Landroid/webkit/WebBackForwardList;->getItemAtIndex(I)Landroid/webkit/WebHistoryItem;"), InfoBrowsing, ""},
	// --- call log helpers (2) ---
	{ref("Landroid/provider/CallLog$Calls;->getLastOutgoingCall(Landroid/content/Context;)Ljava/lang/String;"), InfoCallLog, PermReadCallLog},
	{ref("Landroid/telecom/TelecomManager;->getCallCapablePhoneAccounts()Ljava/util/List;"), InfoCallLog, PermReadCallLog},
	// --- clipboard and advertising identifier (2) ---
	{ref("Lcom/google/android/gms/ads/identifier/AdvertisingIdClient;->getAdvertisingIdInfo(Landroid/content/Context;)Lcom/google/android/gms/ads/identifier/AdvertisingIdClient$Info;"), InfoDeviceID, ""},
	{ref("Landroid/content/ClipboardManager;->getPrimaryClip()Landroid/content/ClipData;"), InfoContact, ""},
}

// byRef indexes the API table, dropping entries whose literal failed to
// parse (zero Ref).
var byRef = func() map[dex.MethodRef]API {
	m := make(map[dex.MethodRef]API, len(apis))
	for _, a := range apis {
		if a.Ref == (dex.MethodRef{}) {
			continue
		}
		m[a.Ref] = a
	}
	return m
}()

// APIs returns a copy of the sensitive API table (malformed entries
// excluded; see TableErrors).
func APIs() []API {
	out := make([]API, 0, len(apis))
	for _, a := range apis {
		if a.Ref == (dex.MethodRef{}) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// LookupAPI returns the table entry for a method reference.
func LookupAPI(r dex.MethodRef) (API, bool) {
	a, ok := byRef[r]
	return a, ok
}
