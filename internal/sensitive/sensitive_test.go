package sensitive

import (
	"testing"

	"ppchecker/internal/dex"
)

// TestAPICount pins the table to the paper's 68 sensitive APIs.
func TestAPICount(t *testing.T) {
	if got := len(APIs()); got != 68 {
		t.Fatalf("sensitive API count = %d, want 68", got)
	}
}

func TestAPITableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range APIs() {
		key := a.Ref.String()
		if seen[key] {
			t.Errorf("duplicate API %s", key)
		}
		seen[key] = true
		if a.Info == "" {
			t.Errorf("API %s has no info mapping", key)
		}
	}
}

func TestLookupAPI(t *testing.T) {
	r, err := dex.ParseMethodRef("Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := LookupAPI(r)
	if !ok || a.Info != InfoDeviceID || a.Permission != PermPhoneState {
		t.Fatalf("getDeviceId lookup = %+v ok=%v", a, ok)
	}
	r.Name = "nonexistent"
	if _, ok := LookupAPI(r); ok {
		t.Fatal("unknown API resolved")
	}
}

func TestURIStringCount(t *testing.T) {
	if got := len(URIStrings()); got != 12 {
		t.Fatalf("URI string count = %d, want 12", got)
	}
}

func TestLookupURIPrefix(t *testing.T) {
	u, ok := LookupURI("content://com.android.calendar/events")
	if !ok || u.Info != InfoCalendar {
		t.Fatalf("calendar URI lookup = %+v ok=%v", u, ok)
	}
	// Longest prefix wins: com.android.contacts over contacts.
	u, ok = LookupURI("content://com.android.contacts/data/phones")
	if !ok || u.URI != "content://com.android.contacts" {
		t.Fatalf("prefix match = %+v", u)
	}
	if _, ok := LookupURI("content://unknown.provider"); ok {
		t.Fatal("unknown URI classified")
	}
}

func TestURIFieldMapping(t *testing.T) {
	// The paper's example: Telephony$Sms CONTENT_URI maps via its
	// permission to "sms".
	infos := InfoForURIField("Landroid/provider/Telephony$Sms;->CONTENT_URI:Landroid/net/Uri;")
	if len(infos) != 1 || infos[0] != InfoSMS {
		t.Fatalf("sms URI field info = %v", infos)
	}
	if got := InfoForURIField("Lbogus;->X:Landroid/net/Uri;"); got != nil {
		t.Fatalf("unknown field mapped: %v", got)
	}
}

func TestPermissionInfoMap(t *testing.T) {
	if infos := InfoForPermission(PermFineLocation); len(infos) != 1 || infos[0] != InfoLocation {
		t.Fatalf("fine location info = %v", infos)
	}
	perms := PermissionsForInfo(InfoLocation)
	if len(perms) != 2 {
		t.Fatalf("location permissions = %v", perms)
	}
	if infos := InfoForPermission("android.permission.UNKNOWN"); len(infos) != 0 {
		t.Fatalf("unknown permission mapped: %v", infos)
	}
}

func TestSinkTable(t *testing.T) {
	if len(Sinks()) == 0 {
		t.Fatal("no sinks")
	}
	channels := map[Channel]bool{}
	for _, s := range Sinks() {
		channels[s.Channel] = true
		if len(s.TaintArgs) == 0 {
			t.Errorf("sink %s has no taint args", s.Ref)
		}
	}
	for _, want := range []Channel{ChannelLog, ChannelFile, ChannelNetwork, ChannelSMS, ChannelBluetooth} {
		if !channels[want] {
			t.Errorf("missing sink channel %s", want)
		}
	}
	logD, err := dex.ParseMethodRef("Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := LookupSink(logD); !ok || s.Channel != ChannelLog {
		t.Fatalf("Log.d lookup = %+v ok=%v", s, ok)
	}
}
