package sensitive

import "strings"

// URIString maps a content-provider URI prefix to its information.
type URIString struct {
	URI        string
	Info       Info
	Permission string
}

// uriStrings is the 12-entry URI string table of §III-C2.
var uriStrings = []URIString{
	{"content://contacts", InfoContact, PermReadContacts},
	{"content://com.android.contacts", InfoContact, PermReadContacts},
	{"content://call_log/calls", InfoCallLog, PermReadCallLog},
	{"content://sms", InfoSMS, PermReadSMS},
	{"content://mms", InfoSMS, PermReadSMS},
	{"content://com.android.calendar", InfoCalendar, PermReadCalendar},
	{"content://calendar", InfoCalendar, PermReadCalendar},
	{"content://browser/bookmarks", InfoBrowsing, PermReadHistory},
	{"content://media/external/images", InfoCamera, PermReadExternal},
	{"content://media/external/audio", InfoAudio, PermReadExternal},
	{"content://user_dictionary", InfoContact, PermReadUserDict},
	{"content://icc/adn", InfoContact, PermReadContacts},
}

// URIStrings returns a copy of the URI string table.
func URIStrings() []URIString { return append([]URIString(nil), uriStrings...) }

// LookupURI classifies a concrete URI by longest-prefix match.
func LookupURI(uri string) (URIString, bool) {
	best := -1
	for i, u := range uriStrings {
		if strings.HasPrefix(uri, u.URI) {
			if best < 0 || len(u.URI) > len(uriStrings[best].URI) {
				best = i
			}
		}
	}
	if best < 0 {
		return URIString{}, false
	}
	return uriStrings[best], true
}

// URIField is a PScout-style URI field: a static field whose value is a
// content URI, mapped to the permission guarding it (and through the
// permission to information). The paper uses 615 fields from PScout;
// this table is the representative subset covering every information
// type the experiments exercise (see DESIGN.md on substitutions).
type URIField struct {
	// Field is the smali-style field spec, e.g.
	// "Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;".
	Field      string
	Value      string // the URI the field resolves to
	Permission string
}

var uriFields = []URIField{
	{"Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/data/phones", PermReadContacts},
	{"Landroid/provider/ContactsContract$CommonDataKinds$Email;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/data/emails", PermReadContacts},
	{"Landroid/provider/ContactsContract$Contacts;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/contacts", PermReadContacts},
	{"Landroid/provider/ContactsContract$Data;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/data", PermReadContacts},
	{"Landroid/provider/ContactsContract$RawContacts;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/raw_contacts", PermReadContacts},
	{"Landroid/provider/ContactsContract$Groups;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/groups", PermReadContacts},
	{"Landroid/provider/ContactsContract$Profile;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.contacts/profile", PermReadContacts},
	{"Landroid/provider/Contacts$People;->CONTENT_URI:Landroid/net/Uri;", "content://contacts/people", PermReadContacts},
	{"Landroid/provider/Contacts$Phones;->CONTENT_URI:Landroid/net/Uri;", "content://contacts/phones", PermReadContacts},
	{"Landroid/provider/CallLog$Calls;->CONTENT_URI:Landroid/net/Uri;", "content://call_log/calls", PermReadCallLog},
	{"Landroid/provider/Telephony$Sms;->CONTENT_URI:Landroid/net/Uri;", "content://sms", PermReadSMS},
	{"Landroid/provider/Telephony$Sms$Inbox;->CONTENT_URI:Landroid/net/Uri;", "content://sms/inbox", PermReadSMS},
	{"Landroid/provider/Telephony$Sms$Sent;->CONTENT_URI:Landroid/net/Uri;", "content://sms/sent", PermReadSMS},
	{"Landroid/provider/Telephony$Mms;->CONTENT_URI:Landroid/net/Uri;", "content://mms", PermReadSMS},
	{"Landroid/provider/Telephony$Threads;->CONTENT_URI:Landroid/net/Uri;", "content://mms-sms/conversations", PermReadSMS},
	{"Landroid/provider/CalendarContract$Events;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.calendar/events", PermReadCalendar},
	{"Landroid/provider/CalendarContract$Calendars;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.calendar/calendars", PermReadCalendar},
	{"Landroid/provider/CalendarContract$Attendees;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.calendar/attendees", PermReadCalendar},
	{"Landroid/provider/CalendarContract$Reminders;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.calendar/reminders", PermReadCalendar},
	{"Landroid/provider/Browser;->BOOKMARKS_URI:Landroid/net/Uri;", "content://browser/bookmarks", PermReadHistory},
	{"Landroid/provider/Browser;->SEARCHES_URI:Landroid/net/Uri;", "content://browser/searches", PermReadHistory},
	{"Landroid/provider/MediaStore$Images$Media;->EXTERNAL_CONTENT_URI:Landroid/net/Uri;", "content://media/external/images/media", PermReadExternal},
	{"Landroid/provider/MediaStore$Audio$Media;->EXTERNAL_CONTENT_URI:Landroid/net/Uri;", "content://media/external/audio/media", PermReadExternal},
	{"Landroid/provider/MediaStore$Video$Media;->EXTERNAL_CONTENT_URI:Landroid/net/Uri;", "content://media/external/video/media", PermReadExternal},
	{"Landroid/provider/UserDictionary$Words;->CONTENT_URI:Landroid/net/Uri;", "content://user_dictionary/words", PermReadUserDict},
	{"Landroid/provider/VoicemailContract$Voicemails;->CONTENT_URI:Landroid/net/Uri;", "content://com.android.voicemail/voicemail", PermReadCallLog},
}

// URIFields returns a copy of the URI field table.
func URIFields() []URIField { return append([]URIField(nil), uriFields...) }

// LookupURIField resolves a field spec to its entry.
func LookupURIField(field string) (URIField, bool) {
	for _, f := range uriFields {
		if f.Field == field {
			return f, true
		}
	}
	return URIField{}, false
}

// InfoForURIField maps a URI field to information via its permission,
// exactly as the paper does with the PScout map ("we map these fields
// to the private information according to the corresponding
// permissions").
func InfoForURIField(field string) []Info {
	f, ok := LookupURIField(field)
	if !ok {
		return nil
	}
	return InfoForPermission(f.Permission)
}
