package sensitive

import "ppchecker/internal/dex"

// Channel classifies a sink by where the data leaves the app, matching
// §III-C1 of the paper: log, file, network, SMS, or Bluetooth.
type Channel string

// Sink channels.
const (
	ChannelLog       Channel = "log"
	ChannelFile      Channel = "file"
	ChannelNetwork   Channel = "network"
	ChannelSMS       Channel = "sms"
	ChannelBluetooth Channel = "bluetooth"
)

// Sink is one data-exfiltration API.
type Sink struct {
	Ref     dex.MethodRef
	Channel Channel
	// TaintArgs lists which argument positions carry the leaked data
	// (receiver is position 0 for virtual calls).
	TaintArgs []int
}

var sinks = []Sink{
	// log
	{ref("Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I"), ChannelLog, []int{1}},
	{ref("Landroid/util/Log;->e(Ljava/lang/String;Ljava/lang/String;)I"), ChannelLog, []int{1}},
	{ref("Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I"), ChannelLog, []int{1}},
	{ref("Landroid/util/Log;->w(Ljava/lang/String;Ljava/lang/String;)I"), ChannelLog, []int{1}},
	{ref("Landroid/util/Log;->v(Ljava/lang/String;Ljava/lang/String;)I"), ChannelLog, []int{1}},
	// file
	{ref("Ljava/io/FileOutputStream;->write([B)V"), ChannelFile, []int{1}},
	{ref("Ljava/io/FileWriter;->write(Ljava/lang/String;)V"), ChannelFile, []int{1}},
	{ref("Ljava/io/BufferedWriter;->write(Ljava/lang/String;)V"), ChannelFile, []int{1}},
	{ref("Landroid/content/SharedPreferences$Editor;->putString(Ljava/lang/String;Ljava/lang/String;)Landroid/content/SharedPreferences$Editor;"), ChannelFile, []int{2}},
	{ref("Landroid/database/sqlite/SQLiteDatabase;->insert(Ljava/lang/String;Ljava/lang/String;Landroid/content/ContentValues;)J"), ChannelFile, []int{3}},
	// network
	{ref("Landroid/net/http/AndroidHttpClient;->execute(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;"), ChannelNetwork, []int{1}},
	{ref("Lorg/apache/http/impl/client/DefaultHttpClient;->execute(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;"), ChannelNetwork, []int{1}},
	{ref("Ljava/net/HttpURLConnection;->connect()V"), ChannelNetwork, []int{0}},
	{ref("Ljava/io/OutputStream;->write([B)V"), ChannelNetwork, []int{1}},
	{ref("Ljava/io/DataOutputStream;->writeBytes(Ljava/lang/String;)V"), ChannelNetwork, []int{1}},
	{ref("Lorg/apache/http/client/methods/HttpPost;->setEntity(Lorg/apache/http/HttpEntity;)V"), ChannelNetwork, []int{1}},
	{ref("Ljava/net/URL;->openConnection()Ljava/net/URLConnection;"), ChannelNetwork, []int{0}},
	// sms
	{ref("Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;Landroid/app/PendingIntent;)V"), ChannelSMS, []int{3}},
	{ref("Landroid/telephony/SmsManager;->sendDataMessage(Ljava/lang/String;Ljava/lang/String;S[BLandroid/app/PendingIntent;Landroid/app/PendingIntent;)V"), ChannelSMS, []int{4}},
	// bluetooth
	{ref("Landroid/bluetooth/BluetoothOutputStream;->write([B)V"), ChannelBluetooth, []int{1}},
	{ref("Landroid/bluetooth/BluetoothSocket;->getOutputStream()Ljava/io/OutputStream;"), ChannelBluetooth, []int{0}},
}

var sinkByRef = func() map[dex.MethodRef]Sink {
	m := make(map[dex.MethodRef]Sink, len(sinks))
	for _, s := range sinks {
		if s.Ref == (dex.MethodRef{}) {
			continue
		}
		m[s.Ref] = s
	}
	return m
}()

// Sinks returns a copy of the sink table (malformed entries excluded;
// see TableErrors).
func Sinks() []Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s.Ref == (dex.MethodRef{}) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// LookupSink returns the sink entry for a method reference.
func LookupSink(r dex.MethodRef) (Sink, bool) {
	s, ok := sinkByRef[r]
	return s, ok
}

// ContentResolverQuery is the content-provider query method whose URI
// argument the static analysis tracks (§III-C2).
var ContentResolverQuery = ref("Landroid/content/ContentResolver;->query(Landroid/net/Uri;[Ljava/lang/String;Ljava/lang/String;[Ljava/lang/String;Ljava/lang/String;)Landroid/database/Cursor;")

// UriParse is Uri.parse, whose const-string argument the analysis
// resolves to a concrete URI.
var UriParse = ref("Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri;")
