package sensitive

// Android permission name constants.
const (
	PermFineLocation   = "android.permission.ACCESS_FINE_LOCATION"
	PermCoarseLocation = "android.permission.ACCESS_COARSE_LOCATION"
	PermReadContacts   = "android.permission.READ_CONTACTS"
	PermWriteContacts  = "android.permission.WRITE_CONTACTS"
	PermGetAccounts    = "android.permission.GET_ACCOUNTS"
	PermReadCalendar   = "android.permission.READ_CALENDAR"
	PermWriteCalendar  = "android.permission.WRITE_CALENDAR"
	PermCamera         = "android.permission.CAMERA"
	PermRecordAudio    = "android.permission.RECORD_AUDIO"
	PermPhoneState     = "android.permission.READ_PHONE_STATE"
	PermReadSMS        = "android.permission.READ_SMS"
	PermReceiveSMS     = "android.permission.RECEIVE_SMS"
	PermReadCallLog    = "android.permission.READ_CALL_LOG"
	PermReadHistory    = "com.android.browser.permission.READ_HISTORY_BOOKMARKS"
	PermBluetooth      = "android.permission.BLUETOOTH"
	PermWifiState      = "android.permission.ACCESS_WIFI_STATE"
	PermInternet       = "android.permission.INTERNET"
	PermGetTasks       = "android.permission.GET_TASKS"
	PermReadUserDict   = "android.permission.READ_USER_DICTIONARY"
	PermReadExternal   = "android.permission.READ_EXTERNAL_STORAGE"
)

// permInfo maps each permission to the private information it guards
// (per the official documentation, as in §III-D of the paper).
var permInfo = map[string][]Info{
	PermFineLocation:   {InfoLocation},
	PermCoarseLocation: {InfoLocation},
	PermReadContacts:   {InfoContact},
	PermWriteContacts:  {InfoContact},
	PermGetAccounts:    {InfoAccount, InfoEmail},
	PermReadCalendar:   {InfoCalendar},
	PermWriteCalendar:  {InfoCalendar},
	PermCamera:         {InfoCamera},
	PermRecordAudio:    {InfoAudio},
	PermPhoneState:     {InfoDeviceID, InfoPhone},
	PermReadSMS:        {InfoSMS},
	PermReceiveSMS:     {InfoSMS},
	PermReadCallLog:    {InfoCallLog},
	PermReadHistory:    {InfoBrowsing},
	PermBluetooth:      {InfoBluetooth},
	PermWifiState:      {InfoWifi, InfoIPAddress},
	PermGetTasks:       {InfoAppList},
	PermReadUserDict:   {},
	PermReadExternal:   {InfoCamera},
}

// InfoForPermission returns the private information a permission
// guards.
func InfoForPermission(perm string) []Info {
	return append([]Info(nil), permInfo[perm]...)
}

// PermissionsForInfo returns the permissions guarding an information
// type, in table order.
func PermissionsForInfo(info Info) []string {
	var out []string
	for _, p := range permissionOrder {
		for _, i := range permInfo[p] {
			if i == info {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// permissionOrder fixes iteration order for determinism.
var permissionOrder = []string{
	PermFineLocation, PermCoarseLocation, PermReadContacts,
	PermWriteContacts, PermGetAccounts, PermReadCalendar,
	PermWriteCalendar, PermCamera, PermRecordAudio, PermPhoneState,
	PermReadSMS, PermReceiveSMS, PermReadCallLog, PermReadHistory,
	PermBluetooth, PermWifiState, PermInternet, PermGetTasks,
	PermReadUserDict, PermReadExternal,
}

// AllPermissions returns the known permission names in stable order.
func AllPermissions() []string {
	return append([]string(nil), permissionOrder...)
}
