package actrie

import (
	"strings"
	"testing"
)

func build(fold bool, pats ...string) *Automaton {
	b := NewBuilder(fold)
	for i, p := range pats {
		b.Add(p, 1<<uint(i%32))
	}
	return b.Build()
}

func TestContainsAnyRaw(t *testing.T) {
	a := build(false, "without your consent", "opt out", "third party")
	cases := []struct {
		text string
		want bool
	}{
		{"we never share data without your consent.", true},
		{"you may opt out at any time", true},
		{"we share with third parties", true}, // substring of "parties"? no — "third party" vs "third parties": "third part" + "y"... "third party" not in "third parties"
		{"nothing relevant here", false},
		{"", false},
		{"WITHOUT YOUR CONSENT", false}, // raw mode is case-sensitive
	}
	cases[2].want = strings.Contains("we share with third parties", "third party")
	for _, c := range cases {
		if got := a.ContainsAny(c.text); got != c.want {
			t.Errorf("ContainsAny(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestTokenBoundaries(t *testing.T) {
	a := build(true, "use", "share", "do", "collect")
	cases := []struct {
		text string
		want bool
	}{
		{"we use your data", true},
		{"the user profile", false},       // "use" inside "user"
		{"re-use of data", false},         // hyphen joins the token
		{"we reuse data", false},          // "use" inside "reuse"
		{"USE of location", true},         // folded
		{"they share's oddly", true},      // contraction remainder "'s"
		{"don't worry", true},             // "do" + remainder "n't"
		{"the donor gave", false},         // "do" inside "donor"
		{"use", true},                     // whole text
		{"use.", true},                    // punctuation boundary
		{"(use)", true},                   // both sides punctuation
		{"misuse", false},                 // left boundary fails
		{"we collect, use, share.", true}, // commas
		{"", false},
	}
	for _, c := range cases {
		if got := a.HasToken(c.text); got != c.want {
			t.Errorf("HasToken(%q) = %v, want %v", c.text, got, c.want)
		}
		if got := a.Reference().HasToken(c.text); got != c.want {
			t.Errorf("Reference.HasToken(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestTokenValuesMerge(t *testing.T) {
	b := NewBuilder(true)
	b.Add("collect", 1)
	b.Add("use", 2)
	b.Add("collect", 4) // duplicate: values OR
	a := b.Build()
	if got := a.TokenValues("we collect and use data"); got != 7 {
		t.Fatalf("TokenValues = %#x, want 7", got)
	}
	if got := a.TokenValues("we use data"); got != 2 {
		t.Fatalf("TokenValues = %#x, want 2", got)
	}
	if got := a.TokenValues("nothing"); got != 0 {
		t.Fatalf("TokenValues = %#x, want 0", got)
	}
}

func TestOverlappingPatterns(t *testing.T) {
	// "he" is a suffix of "she"; "hers" extends "he"... the automaton
	// must surface every whole-token hit including suffix outputs.
	a := build(true, "he", "she", "hers", "her")
	ref := a.Reference()
	for _, text := range []string{
		"she said", "he said", "hers alone", "her book", "shers",
		"he she her hers", "ashe", "s he",
	} {
		if g, w := a.TokenValues(text), ref.TokenValues(text); g != w {
			t.Errorf("TokenValues(%q) = %#x, ref %#x", text, g, w)
		}
	}
}

func TestEmptyAutomaton(t *testing.T) {
	a := NewBuilder(true).Build()
	if !a.Empty() {
		t.Fatal("expected Empty")
	}
	if a.ContainsAny("anything") || a.HasToken("anything") || a.TokenValues("x") != 0 {
		t.Fatal("empty automaton matched")
	}
	// Empty patterns are ignored.
	b := NewBuilder(false)
	b.Add("", 1)
	if b.Len() != 0 {
		t.Fatal("empty pattern accepted")
	}
}

func TestNonASCIIBytes(t *testing.T) {
	// Multi-byte UTF-8 is a token boundary (non-word bytes), and raw
	// mode must match byte-exactly through it.
	a := build(false, "données", "use")
	if !a.ContainsAny("vos données personnelles") {
		t.Fatal("missed UTF-8 pattern")
	}
	tok := build(true, "use")
	if !tok.HasToken("usé use") {
		t.Fatal("missed token next to UTF-8 word")
	}
	if g, w := tok.HasToken("usé"), tok.Reference().HasToken("usé"); g != w {
		t.Fatalf("UTF-8 boundary disagreement: dfa=%v ref=%v", g, w)
	}
}

// FuzzLexiconMatch proves the DFA equivalent to the linear reference
// on arbitrary pattern sets and texts, in both fold modes and all
// three match modes. Patterns ride in the first input, newline
// separated; seeds cover the word-boundary and overlapping-phrase
// cases the analyzers depend on.
func FuzzLexiconMatch(f *testing.F) {
	f.Add("use\nuser\nshare", "the user may use and share data")
	f.Add("use", "re-use misuse user's use")
	f.Add("do\ndon", "don't do that, donor")
	f.Add("he\nshe\nher\nhers", "she gave hers to her and he left")
	f.Add("collect\ncollection", "data collection; we collect it")
	f.Add("third party\nparty", "third parties and one third party")
	f.Add("a\naa\naaa", "aaaa aaa'a a-a a")
	f.Add("use", "usé use usë")
	f.Add("'s\nn't", "user's don't n't 's")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, patBlob, text string) {
		if len(patBlob) > 256 || len(text) > 4096 {
			t.Skip()
		}
		pats := strings.Split(patBlob, "\n")
		if len(pats) > 16 {
			pats = pats[:16]
		}
		for _, fold := range []bool{false, true} {
			b := NewBuilder(fold)
			for i, p := range pats {
				b.Add(p, 1<<uint(i%32))
			}
			a := b.Build()
			ref := a.Reference()
			if g, w := a.ContainsAny(text), ref.ContainsAny(text); g != w {
				t.Fatalf("fold=%v ContainsAny(%q/%q): dfa=%v ref=%v", fold, patBlob, text, g, w)
			}
			if g, w := a.HasToken(text), ref.HasToken(text); g != w {
				t.Fatalf("fold=%v HasToken(%q/%q): dfa=%v ref=%v", fold, patBlob, text, g, w)
			}
			if g, w := a.TokenValues(text), ref.TokenValues(text); g != w {
				t.Fatalf("fold=%v TokenValues(%q/%q): dfa=%#x ref=%#x", fold, patBlob, text, g, w)
			}
		}
	})
}
