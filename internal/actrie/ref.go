package actrie

import "strings"

// Reference is the retained loop implementation of the automaton's
// match semantics: per-pattern strings.Index scans with the same
// boundary rule. It exists so differential and fuzz tests can prove
// the DFA equivalent, and as readable documentation of what the DFA
// computes. It is not used on hot paths.
type Reference struct {
	fold bool
	pats []string
	vals []uint32
}

// ContainsAny reports whether any pattern is a substring of text.
func (r *Reference) ContainsAny(text string) bool {
	if r.fold {
		text = asciiLower(text)
	}
	for _, p := range r.pats {
		if strings.Contains(text, p) {
			return true
		}
	}
	return false
}

// HasToken reports whether any pattern occurs as a whole token.
func (r *Reference) HasToken(text string) bool {
	return r.scan(text, true) != 0
}

// TokenValues returns the OR of values over all whole-token matches.
func (r *Reference) TokenValues(text string) uint32 {
	return r.scan(text, false)
}

func (r *Reference) scan(text string, first bool) uint32 {
	if r.fold {
		// Byte-wise ASCII lowering keeps offsets stable, and isWordByte
		// is case-insensitive, so boundary checks on the lowered text
		// agree with checks on the original.
		text = asciiLower(text)
	}
	var acc uint32
	for i, p := range r.pats {
		for off := 0; ; {
			k := strings.Index(text[off:], p)
			if k < 0 {
				break
			}
			start := off + k
			end := start + len(p)
			if (start == 0 || !isWordByte(text[start-1])) && rightBoundary(text, end) {
				acc |= r.vals[i]
				if first {
					return acc
				}
			}
			off = start + 1
		}
	}
	return acc
}
