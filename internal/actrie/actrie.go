// Package actrie implements Aho–Corasick multi-pattern matching for
// the lexicon hot paths: one precompiled automaton replaces the
// per-sentence linear scans over verb surface forms, sensitive-phrase
// lists, and consent/disclaimer markers. The automaton is a dense DFA
// over byte classes (failure transitions are resolved at build time),
// so matching is one table lookup per input byte regardless of how
// many patterns are loaded.
//
// Two match modes are provided, mirroring the two scan shapes the
// analyzers use:
//
//   - ContainsAny: raw byte substring search, exactly equivalent to
//     strings.Contains per pattern (used for consent/disclaimer
//     phrases on already-lowercased sentences).
//   - HasToken/TokenValues: word-boundary-aware matching whose
//     acceptance rule mirrors nlp.Tokenize — a hit must start at a
//     word-run boundary and end at one, where a trailing contraction
//     suffix ("user's", "don't") still counts as a boundary.
//
// Every automaton retains its pattern list so a Reference — the
// straightforward loop implementation — can be derived for the
// differential and fuzz tests that prove the DFA equivalent.
package actrie

import "sort"

// Builder accumulates patterns before compilation. Adding the same
// pattern twice ORs the values together, so categories naturally
// merge into bitmasks.
type Builder struct {
	fold bool
	pats []string
	vals []uint32
	seen map[string]int
}

// NewBuilder returns an empty builder. With fold true the automaton
// matches ASCII case-insensitively (patterns are normalized to
// lowercase at Add time); with fold false matching is byte-exact.
func NewBuilder(fold bool) *Builder {
	return &Builder{fold: fold, seen: map[string]int{}}
}

// Add registers a pattern with an associated value (typically a
// category bitmask). Empty patterns are ignored; duplicate patterns
// OR their values.
func (b *Builder) Add(pat string, value uint32) {
	if pat == "" {
		return
	}
	if b.fold {
		pat = asciiLower(pat)
	}
	if i, ok := b.seen[pat]; ok {
		b.vals[i] |= value
		return
	}
	b.seen[pat] = len(b.pats)
	b.pats = append(b.pats, pat)
	b.vals = append(b.vals, value)
}

// AddAll registers each pattern with the same value.
func (b *Builder) AddAll(pats []string, value uint32) {
	for _, p := range pats {
		b.Add(p, value)
	}
}

// Len returns the number of distinct patterns added so far.
func (b *Builder) Len() int { return len(b.pats) }

// Automaton is the compiled matcher. It is immutable and safe for
// concurrent use.
type Automaton struct {
	fold    bool
	classOf [256]uint8
	nc      int
	trans   []int32 // states × nc, failure links resolved
	outOff  []int32 // per-state output range, len states+1
	outPlen []int32 // pattern byte length per output
	outVal  []uint32
	pats    []string
	vals    []uint32
}

// Build compiles the accumulated patterns. The builder stays usable
// (Build can be called again after further Adds); the automaton
// snapshots the pattern set.
func (b *Builder) Build() *Automaton {
	a := &Automaton{
		fold: b.fold,
		pats: append([]string(nil), b.pats...),
		vals: append([]uint32(nil), b.vals...),
	}
	// Byte classes: class 0 is "every byte not in any pattern"; each
	// byte that appears gets its own class. Folded automatons store
	// lowercase patterns, so mapping uppercase onto the lowercase
	// class afterwards folds matching without widening the alphabet.
	used := [256]bool{}
	for _, p := range a.pats {
		for i := 0; i < len(p); i++ {
			used[p[i]] = true
		}
	}
	a.nc = 1
	for c := 0; c < 256; c++ {
		if used[c] {
			a.classOf[c] = uint8(a.nc)
			a.nc++
		}
	}
	if a.fold {
		for c := byte('a'); c <= 'z'; c++ {
			a.classOf[c-'a'+'A'] = a.classOf[c]
		}
	}

	// Goto trie.
	type tnode struct {
		next []int32
		fail int32
		out  []int32 // pattern indices
	}
	newNode := func() tnode {
		next := make([]int32, a.nc)
		for i := range next {
			next[i] = -1
		}
		return tnode{next: next}
	}
	nodes := []tnode{newNode()}
	for pi, p := range a.pats {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := a.classOf[p[i]]
			if nodes[s].next[c] < 0 {
				nodes = append(nodes, newNode())
				nodes[s].next[c] = int32(len(nodes) - 1)
			}
			s = nodes[s].next[c]
		}
		nodes[s].out = append(nodes[s].out, int32(pi))
	}

	// BFS: compute failure links, merge suffix outputs, and resolve
	// missing transitions so the result is a plain DFA.
	queue := make([]int32, 0, len(nodes))
	for c := 0; c < a.nc; c++ {
		if ch := nodes[0].next[c]; ch < 0 {
			nodes[0].next[c] = 0
		} else {
			queue = append(queue, ch)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		f := nodes[s].fail
		nodes[s].out = append(nodes[s].out, nodes[f].out...)
		for c := 0; c < a.nc; c++ {
			if ch := nodes[s].next[c]; ch < 0 {
				nodes[s].next[c] = nodes[f].next[c]
			} else {
				nodes[ch].fail = nodes[f].next[c]
				queue = append(queue, ch)
			}
		}
	}

	// Flatten. Output lists are sorted longest-first so boundary
	// checks can stop at the first accepted start when values are
	// identical — and deterministically ordered either way.
	a.trans = make([]int32, len(nodes)*a.nc)
	a.outOff = make([]int32, len(nodes)+1)
	for si, n := range nodes {
		copy(a.trans[si*a.nc:], n.next)
		sort.Slice(n.out, func(i, j int) bool {
			return len(a.pats[n.out[i]]) > len(a.pats[n.out[j]])
		})
		for _, pi := range n.out {
			a.outPlen = append(a.outPlen, int32(len(a.pats[pi])))
			a.outVal = append(a.outVal, a.vals[pi])
		}
		a.outOff[si+1] = int32(len(a.outPlen))
	}
	return a
}

// Reference returns the linear-scan implementation of the same match
// semantics over the same pattern snapshot. It is the oracle the
// differential and fuzz tests compare the DFA against.
func (a *Automaton) Reference() *Reference {
	return &Reference{fold: a.fold, pats: a.pats, vals: a.vals}
}

// Empty reports whether the automaton has no patterns (it then
// matches nothing).
func (a *Automaton) Empty() bool { return len(a.pats) == 0 }

// ContainsAny reports whether any pattern occurs as a substring of
// text — for an unfolded automaton, exactly strings.Contains(text, p)
// for some pattern p; for a folded one, the ASCII-case-insensitive
// analogue.
func (a *Automaton) ContainsAny(text string) bool {
	s, nc := int32(0), a.nc
	for i := 0; i < len(text); i++ {
		s = a.trans[int(s)*nc+int(a.classOf[text[i]])]
		if a.outOff[s] != a.outOff[s+1] {
			return true
		}
	}
	return false
}

// HasToken reports whether any pattern occurs as a whole token of
// text under the boundary rule described in the package comment.
func (a *Automaton) HasToken(text string) bool {
	s, nc := int32(0), a.nc
	for j := 0; j < len(text); j++ {
		s = a.trans[int(s)*nc+int(a.classOf[text[j]])]
		lo, hi := a.outOff[s], a.outOff[s+1]
		if lo == hi {
			continue
		}
		end := j + 1
		if !rightBoundary(text, end) {
			continue
		}
		for k := lo; k < hi; k++ {
			if start := end - int(a.outPlen[k]); start == 0 || !isWordByte(text[start-1]) {
				return true
			}
		}
	}
	return false
}

// TokenValues returns the OR of the values of every pattern that
// occurs as a whole token of text.
func (a *Automaton) TokenValues(text string) uint32 {
	var acc uint32
	s, nc := int32(0), a.nc
	for j := 0; j < len(text); j++ {
		s = a.trans[int(s)*nc+int(a.classOf[text[j]])]
		lo, hi := a.outOff[s], a.outOff[s+1]
		if lo == hi {
			continue
		}
		end := j + 1
		if !rightBoundary(text, end) {
			continue
		}
		for k := lo; k < hi; k++ {
			if start := end - int(a.outPlen[k]); start == 0 || !isWordByte(text[start-1]) {
				acc |= a.outVal[k]
			}
		}
	}
	return acc
}

// isWordByte mirrors nlp's tokenizer alphabet: letters, digits,
// apostrophe, hyphen. A match abutting one of these on either side is
// inside a larger token and is rejected in token mode.
func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '\'' || c == '-'
}

// contractionSuffixes mirrors nlp.Tokenize's trailing-clitic split:
// a match whose word-run remainder is exactly one of these still ends
// a token ("user" in "user's data").
var contractionSuffixes = [...]string{"n't", "'s", "'re", "'ve", "'ll", "'d", "'m"}

// rightBoundary reports whether a match ending at end (exclusive)
// ends a token: at end of text, before a non-word byte, or followed
// only by a contraction suffix within its word run.
func rightBoundary(text string, end int) bool {
	if end == len(text) || !isWordByte(text[end]) {
		return true
	}
	k := end
	for k < len(text) && isWordByte(text[k]) {
		k++
	}
	rem := text[end:k]
	for _, suf := range contractionSuffixes {
		if asciiEqualFold(rem, suf) {
			return true
		}
	}
	return false
}

// asciiLower lowercases ASCII letters byte-wise, leaving everything
// else (including multi-byte UTF-8) untouched so byte offsets are
// stable.
func asciiLower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := []byte(s)
			for ; i < len(b); i++ {
				if c := b[i]; c >= 'A' && c <= 'Z' {
					b[i] = c + 32
				}
			}
			return string(b)
		}
	}
	return s
}

// asciiEqualFold is strings.EqualFold restricted to ASCII.
func asciiEqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'A' && ca <= 'Z' {
			ca += 32
		}
		if cb >= 'A' && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}
