// Package autoppg generates a privacy policy from an app package — a
// reimplementation of the paper authors' companion system AutoPPG
// ("We proposed and developed AutoPPG to automatically generate
// privacy policies for Android apps", §VII). The generated policy
// declares exactly what the static analysis proves the app does:
// collected information, retained information with its channel, the
// description-implied behaviours, and the bundled third-party
// libraries. By construction, PPChecker finds no problems in a policy
// generated for the same app (the closure property the tests pin).
package autoppg

import (
	"fmt"
	"sort"
	"strings"

	"ppchecker/internal/apk"
	"ppchecker/internal/desc"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/static"
)

// Options configures generation.
type Options struct {
	// AppName overrides the manifest package in the title.
	AppName string
	// Description, when given, is analyzed so description-implied
	// information is covered even when the code path was not proven.
	Description string
	// IncludeLibs adds a third-party section naming detected libraries.
	IncludeLibs bool
	// Static controls the underlying analysis.
	Static static.Options
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{IncludeLibs: true, Static: static.DefaultOptions()}
}

// phraseFor maps an information type to the resource phrase used in
// generated sentences. Every phrase ESA-matches its information name
// (pinned by tests), so checkers recognize the coverage.
var phraseFor = map[sensitive.Info]string{
	sensitive.InfoLocation:  "location information",
	sensitive.InfoContact:   "contacts",
	sensitive.InfoPhone:     "phone number",
	sensitive.InfoDeviceID:  "device identifier",
	sensitive.InfoIPAddress: "ip address",
	sensitive.InfoCookie:    "cookies",
	sensitive.InfoEmail:     "email address",
	sensitive.InfoAccount:   "account information",
	sensitive.InfoCalendar:  "calendar entries",
	sensitive.InfoCamera:    "camera",
	sensitive.InfoAudio:     "audio recordings",
	sensitive.InfoSMS:       "sms messages",
	sensitive.InfoCallLog:   "call log",
	sensitive.InfoAppList:   "list of installed applications",
	sensitive.InfoBrowsing:  "browsing history",
	sensitive.InfoWifi:      "wifi information",
	sensitive.InfoBluetooth: "bluetooth devices",
}

// channelClause describes where retained information goes.
var channelClause = map[sensitive.Channel]string{
	sensitive.ChannelLog:       "in diagnostic logs on your device",
	sensitive.ChannelFile:      "in files on your device",
	sensitive.ChannelNetwork:   "on our servers",
	sensitive.ChannelSMS:       "in outgoing messages",
	sensitive.ChannelBluetooth: "on paired devices",
}

// Generate produces the policy as HTML. It fails when the static
// analysis cannot process the APK.
func Generate(a *apk.APK, opts Options) (string, error) {
	res, err := static.Analyze(a, opts.Static)
	if err != nil {
		return "", err
	}
	name := opts.AppName
	if name == "" {
		name = a.Manifest.Package
	}

	collected := map[sensitive.Info]bool{}
	for _, info := range res.CollectedInfo() {
		collected[info] = true
	}
	// Description-implied information is covered too: an app whose
	// description advertises location should declare it even if the
	// static analysis missed the call.
	if opts.Description != "" {
		for _, info := range desc.NewAnalyzer().Analyze(opts.Description).Infos {
			collected[info] = true
		}
	}
	retainedBy := map[sensitive.Info]map[sensitive.Channel]bool{}
	for _, l := range res.Leaks {
		if retainedBy[l.Info] == nil {
			retainedBy[l.Info] = map[sensitive.Channel]bool{}
		}
		retainedBy[l.Info][l.Channel] = true
		collected[l.Info] = true
	}

	var b strings.Builder
	b.WriteString("<html><head><title>Privacy Policy</title></head><body>\n")
	fmt.Fprintf(&b, "<h1>Privacy Policy for %s</h1>\n", name)
	b.WriteString("<p>This privacy policy was generated from an analysis of the application and explains what information the application handles.</p>\n")

	if len(collected) == 0 {
		b.WriteString("<p>The application does not access personal information.</p>\n")
	}
	for _, info := range sortedInfos(collected) {
		fmt.Fprintf(&b, "<p>We may collect your %s to provide the service.</p>\n", phraseFor[info])
	}
	for _, info := range sortedRetained(retainedBy) {
		for _, ch := range sortedChannels(retainedBy[info]) {
			fmt.Fprintf(&b, "<p>We may store your %s %s.</p>\n", phraseFor[info], channelClause[ch])
		}
	}
	if opts.IncludeLibs {
		if libs := libdetect.Detect(a.Dex); len(libs) > 0 {
			names := make([]string, len(libs))
			for i, l := range libs {
				names[i] = l.Name
			}
			fmt.Fprintf(&b, "<p>The application includes third party services (%s) with their own privacy policies, and we encourage you to review them.</p>\n",
				strings.Join(names, ", "))
		}
	}
	b.WriteString("<p>If you have any questions about this policy, please email our support team.</p>\n")
	b.WriteString("</body></html>\n")
	return b.String(), nil
}

func sortedInfos(set map[sensitive.Info]bool) []sensitive.Info {
	out := make([]sensitive.Info, 0, len(set))
	for info := range set {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRetained(m map[sensitive.Info]map[sensitive.Channel]bool) []sensitive.Info {
	out := make([]sensitive.Info, 0, len(m))
	for info := range m {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedChannels(set map[sensitive.Channel]bool) []sensitive.Channel {
	out := make([]sensitive.Channel, 0, len(set))
	for ch := range set {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
