package autoppg

import (
	"strings"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/dex"
	"ppchecker/internal/esa"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/synth"
)

// TestPhrasesMatchInfos: every generated phrase must ESA-match its
// information name, or the generated coverage would be invisible to
// the checker.
func TestPhrasesMatchInfos(t *testing.T) {
	x := esa.Default()
	for info, phrase := range phraseFor {
		if sim := x.Similarity(string(info), phrase); sim < esa.DefaultThreshold {
			t.Errorf("phrase %q does not cover %q (%.3f)", phrase, info, sim)
		}
	}
}

func buildAPK(t *testing.T, pkg, asm string) *apk.APK {
	t.Helper()
	d, err := dex.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package:     pkg,
		Permissions: []apk.Permission{{Name: sensitive.PermFineLocation}, {Name: sensitive.PermPhoneState}},
		Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main"}}},
	}
	return apk.New(m, d)
}

func TestGenerateDeclaresBehaviour(t *testing.T) {
	a := buildAPK(t, "com.example.gen", `
.class Lcom/example/gen/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v2
    invoke-static {v3, v2}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
.class Lcom/flurry/android/Agent;
.end class
`)
	policy := mustGenerate(t, a, DefaultOptions())
	for _, want := range []string{
		"location information",
		"device identifier",
		"diagnostic logs",
		"Flurry",
	} {
		if !strings.Contains(policy, want) {
			t.Errorf("generated policy missing %q:\n%s", want, policy)
		}
	}
}

func TestGenerateCleanApp(t *testing.T) {
	a := buildAPK(t, "com.example.silent", `
.class Lcom/example/silent/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.end class
`)
	policy := mustGenerate(t, a, DefaultOptions())
	if !strings.Contains(policy, "does not access personal information") {
		t.Fatalf("clean app policy:\n%s", policy)
	}
}

// TestClosureProperty is the headline guarantee: replacing every
// corpus app's policy with a generated one makes PPChecker find no
// problems (no incomplete, no incorrect, no inconsistent findings).
func TestClosureProperty(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 4242, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker()
	problems := 0
	for i, ga := range ds.Apps {
		// Sample across the corpus: every plant region plus fillers.
		if i%7 != 0 {
			continue
		}
		app := *ga.App
		opts := DefaultOptions()
		opts.Description = app.Description
		app.PolicyHTML = mustGenerate(t, app.APK, opts)
		r := checker.Check(&app)
		if r.HasProblem() {
			problems++
			if problems <= 3 {
				t.Errorf("app %d (%s) still has problems with generated policy:\n%s",
					i, app.Name, r.Summary())
			}
		}
	}
	if problems > 0 {
		t.Fatalf("%d apps with problems after regeneration", problems)
	}
}

func mustGenerate(t *testing.T, a *apk.APK, opts Options) string {
	t.Helper()
	policy, err := Generate(a, opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return policy
}
