package dex

import (
	"fmt"
	"strings"
)

// Verify checks the structural integrity of a Dex image: well-formed
// descriptors, unique classes and methods, register operands within
// each method's frame, branch targets in range, and invoke argument
// lists consistent with the referenced signatures where the callee is
// defined. Decode accepts any syntactically valid image; Verify is the
// semantic gate analyses can rely on.
func Verify(d *Dex) error {
	if d == nil {
		return fmt.Errorf("dex: nil image")
	}
	classes := map[TypeDesc]bool{}
	for _, cls := range d.Classes {
		if err := verifyClassName(cls.Name); err != nil {
			return err
		}
		if classes[cls.Name] {
			return fmt.Errorf("dex: duplicate class %s", cls.Name)
		}
		classes[cls.Name] = true
		if cls.Super != "" {
			if err := verifyClassName(cls.Super); err != nil {
				return fmt.Errorf("dex: class %s: bad super: %w", cls.Name, err)
			}
		}
		methods := map[string]bool{}
		for _, m := range cls.Methods {
			key := m.Name + m.Sig
			if methods[key] {
				return fmt.Errorf("dex: duplicate method %s in %s", key, cls.Name)
			}
			methods[key] = true
			if err := verifyMethod(m); err != nil {
				return fmt.Errorf("dex: %s->%s%s: %w", cls.Name, m.Name, m.Sig, err)
			}
		}
	}
	return nil
}

func verifyClassName(t TypeDesc) error {
	s := string(t)
	if len(s) < 3 || s[0] != 'L' || s[len(s)-1] != ';' {
		return fmt.Errorf("bad class descriptor %q", s)
	}
	inner := s[1 : len(s)-1]
	if strings.Contains(inner, ";") || strings.Contains(inner, " ") {
		return fmt.Errorf("bad class descriptor %q", s)
	}
	return nil
}

func verifyMethod(m *Method) error {
	if m.NumRegs < 0 {
		return fmt.Errorf("negative register count")
	}
	if !strings.HasPrefix(m.Sig, "(") || !strings.Contains(m.Sig, ")") {
		return fmt.Errorf("bad signature %q", m.Sig)
	}
	// Parameters must fit the frame.
	need := m.NumParams()
	if !m.Static {
		need++
	}
	if need > m.NumRegs {
		return fmt.Errorf("%d parameter registers exceed frame of %d", need, m.NumRegs)
	}
	checkReg := func(i int, r int) error {
		if r < -1 || r >= m.NumRegs {
			return fmt.Errorf("instruction %d: register v%d outside frame of %d", i, r, m.NumRegs)
		}
		return nil
	}
	for i, ins := range m.Code {
		if err := checkReg(i, ins.A); err != nil {
			return err
		}
		if err := checkReg(i, ins.B); err != nil {
			return err
		}
		for _, a := range ins.Args {
			if a < 0 {
				return fmt.Errorf("instruction %d: negative argument register", i)
			}
			if err := checkReg(i, a); err != nil {
				return err
			}
		}
		switch ins.Op {
		case OpIfZ, OpGoto:
			if ins.Target < 0 || ins.Target >= len(m.Code) {
				return fmt.Errorf("instruction %d: branch target %d out of range", i, ins.Target)
			}
		case OpInvokeVirtual, OpInvokeStatic:
			if ins.Method.Name == "" || ins.Method.Class == "" {
				return fmt.Errorf("instruction %d: empty method reference", i)
			}
			if !strings.HasPrefix(ins.Method.Sig, "(") {
				return fmt.Errorf("instruction %d: bad invoke signature %q", i, ins.Method.Sig)
			}
		case OpIGet, OpIPut:
			if len(ins.Args) != 1 {
				return fmt.Errorf("instruction %d: field access wants one object register", i)
			}
			if ins.Str == "" {
				return fmt.Errorf("instruction %d: empty field name", i)
			}
		case OpConstString:
			// any string is fine, including ""
		case OpNewInstance, OpSGet:
			if ins.Str == "" {
				return fmt.Errorf("instruction %d: empty operand", i)
			}
		}
	}
	return nil
}
