package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary SDEX format: a 4-byte magic, a format version, a string pool
// (every name, descriptor, signature and literal is pooled), and class
// definitions whose instructions reference the pool by index. All
// integers are varints; registers are stored +1 so -1 (unused) encodes
// as 0.

const (
	magic   = "SDEX"
	version = 1
)

type pool struct {
	strings []string
	index   map[string]uint64
}

func newPool() *pool { return &pool{index: map[string]uint64{}} }

func (p *pool) id(s string) uint64 {
	if i, ok := p.index[s]; ok {
		return i
	}
	i := uint64(len(p.strings))
	p.strings = append(p.strings, s)
	p.index[s] = i
	return i
}

// Encode serializes a Dex image.
func Encode(d *Dex) []byte {
	p := newPool()
	var body bytes.Buffer
	writeUvarint(&body, uint64(len(d.Classes)))
	for _, c := range d.Classes {
		writeUvarint(&body, p.id(string(c.Name)))
		writeUvarint(&body, p.id(string(c.Super)))
		writeUvarint(&body, uint64(len(c.Interfaces)))
		for _, t := range c.Interfaces {
			writeUvarint(&body, p.id(string(t)))
		}
		writeUvarint(&body, uint64(len(c.Fields)))
		for _, f := range c.Fields {
			writeUvarint(&body, p.id(f.Name))
			writeUvarint(&body, p.id(string(f.Type)))
		}
		writeUvarint(&body, uint64(len(c.Methods)))
		for _, m := range c.Methods {
			writeUvarint(&body, p.id(m.Name))
			writeUvarint(&body, p.id(m.Sig))
			flags := byte(0)
			if m.Static {
				flags = 1
			}
			body.WriteByte(flags)
			writeUvarint(&body, uint64(m.NumRegs))
			writeUvarint(&body, uint64(len(m.Code)))
			for _, ins := range m.Code {
				encodeInstr(&body, p, ins)
			}
		}
	}
	var out bytes.Buffer
	out.WriteString(magic)
	out.WriteByte(version)
	writeUvarint(&out, uint64(len(p.strings)))
	for _, s := range p.strings {
		writeUvarint(&out, uint64(len(s)))
		out.WriteString(s)
	}
	out.Write(body.Bytes())
	return out.Bytes()
}

func encodeInstr(b *bytes.Buffer, p *pool, ins Instr) {
	b.WriteByte(byte(ins.Op))
	reg := func(r int) { writeUvarint(b, uint64(r+1)) }
	switch ins.Op {
	case OpNop, OpReturnVoid:
	case OpConstString, OpNewInstance, OpSGet:
		reg(ins.A)
		writeUvarint(b, p.id(ins.Str))
	case OpConst:
		reg(ins.A)
		writeVarint(b, ins.Lit)
	case OpMove:
		reg(ins.A)
		reg(ins.B)
	case OpInvokeVirtual, OpInvokeStatic:
		reg(ins.A)
		writeUvarint(b, p.id(string(ins.Method.Class)))
		writeUvarint(b, p.id(ins.Method.Name))
		writeUvarint(b, p.id(ins.Method.Sig))
		writeUvarint(b, uint64(len(ins.Args)))
		for _, a := range ins.Args {
			reg(a)
		}
	case OpIGet:
		reg(ins.A)
		reg(ins.Args[0])
		writeUvarint(b, p.id(ins.Str))
	case OpIPut:
		reg(ins.Args[0])
		writeUvarint(b, p.id(ins.Str))
		reg(ins.B)
	case OpIfZ:
		reg(ins.A)
		writeUvarint(b, uint64(ins.Target))
	case OpGoto:
		writeUvarint(b, uint64(ins.Target))
	case OpReturn:
		reg(ins.A)
	}
}

// Decode parses a binary SDEX image.
func Decode(data []byte) (*Dex, error) {
	r := &reader{data: data}
	if string(r.take(4)) != magic {
		return nil, fmt.Errorf("dex: bad magic")
	}
	if v := r.byte(); v != version {
		return nil, fmt.Errorf("dex: unsupported version %d", v)
	}
	nStr := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nStr > uint64(len(data)) {
		return nil, fmt.Errorf("dex: string pool size %d exceeds input", nStr)
	}
	strs := make([]string, nStr)
	for i := range strs {
		n := r.uvarint()
		strs[i] = string(r.take(int(n)))
	}
	str := func(i uint64) string {
		if r.err == nil && i >= uint64(len(strs)) {
			r.err = fmt.Errorf("dex: string index %d out of range", i)
			return ""
		}
		if r.err != nil {
			return ""
		}
		return strs[i]
	}
	d := &Dex{}
	nCls := r.uvarint()
	for ci := uint64(0); ci < nCls && r.err == nil; ci++ {
		c := &Class{}
		c.Name = TypeDesc(str(r.uvarint()))
		c.Super = TypeDesc(str(r.uvarint()))
		nIf := r.uvarint()
		for i := uint64(0); i < nIf && r.err == nil; i++ {
			c.Interfaces = append(c.Interfaces, TypeDesc(str(r.uvarint())))
		}
		nF := r.uvarint()
		for i := uint64(0); i < nF && r.err == nil; i++ {
			name := str(r.uvarint())
			typ := TypeDesc(str(r.uvarint()))
			c.Fields = append(c.Fields, FieldRef{Class: c.Name, Name: name, Type: typ})
		}
		nM := r.uvarint()
		for i := uint64(0); i < nM && r.err == nil; i++ {
			m := &Method{}
			m.Name = str(r.uvarint())
			m.Sig = str(r.uvarint())
			m.Static = r.byte() == 1
			m.NumRegs = int(r.uvarint())
			codeLen := r.uvarint()
			for k := uint64(0); k < codeLen && r.err == nil; k++ {
				m.Code = append(m.Code, decodeInstr(r, str))
			}
			c.AddMethod(m)
		}
		d.Classes = append(d.Classes, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	return d, nil
}

func decodeInstr(r *reader, str func(uint64) string) Instr {
	ins := Instr{Op: Opcode(r.byte()), A: -1, B: -1}
	reg := func() int { return int(r.uvarint()) - 1 }
	switch ins.Op {
	case OpNop, OpReturnVoid:
	case OpConstString, OpNewInstance, OpSGet:
		ins.A = reg()
		ins.Str = str(r.uvarint())
	case OpConst:
		ins.A = reg()
		ins.Lit = r.varint()
	case OpMove:
		ins.A = reg()
		ins.B = reg()
	case OpInvokeVirtual, OpInvokeStatic:
		ins.A = reg()
		ins.Method.Class = TypeDesc(str(r.uvarint()))
		ins.Method.Name = str(r.uvarint())
		ins.Method.Sig = str(r.uvarint())
		n := r.uvarint()
		if n > uint64(len(r.data)) {
			r.err = fmt.Errorf("dex: arg count %d exceeds input", n)
			return ins
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			ins.Args = append(ins.Args, reg())
		}
	case OpIGet:
		ins.A = reg()
		ins.Args = []int{reg()}
		ins.Str = str(r.uvarint())
	case OpIPut:
		ins.Args = []int{reg()}
		ins.Str = str(r.uvarint())
		ins.B = reg()
	case OpIfZ:
		ins.A = reg()
		ins.Target = int(r.uvarint())
	case OpGoto:
		ins.Target = int(r.uvarint())
	case OpReturn:
		ins.A = reg()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("dex: unknown opcode %d", ins.Op)
		}
	}
	return ins
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("dex: truncated input at %d (+%d)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("dex: bad uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("dex: bad varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.Write(tmp[:n])
}
