package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses SDEX textual assembly (a smali-like format) into a
// Dex image. The format:
//
//	.class Lcom/example/Main; extends Landroid/app/Activity;
//	.field token:Ljava/lang/String;
//	.method onCreate(Landroid/os/Bundle;)V regs=8
//	    const-string v1, "content://contacts"
//	    invoke-virtual {v0, v1}, Landroid/content/ContentResolver;->query(Ljava/lang/String;)Landroid/database/Cursor; -> v2
//	    return-void
//	.end method
//	.end class
//
// Branch targets are absolute instruction indexes within the method.
func Assemble(text string) (*Dex, error) {
	d := &Dex{}
	var cls *Class
	var meth *Method
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("dex: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, ".class "):
			if cls != nil {
				return nil, fail("nested .class")
			}
			cls = &Class{}
			fields := strings.Fields(line[len(".class "):])
			if len(fields) == 0 {
				return nil, fail(".class missing name")
			}
			cls.Name = TypeDesc(fields[0])
			for i := 1; i < len(fields); i++ {
				switch fields[i] {
				case "extends":
					if i+1 >= len(fields) {
						return nil, fail("extends missing type")
					}
					i++
					cls.Super = TypeDesc(fields[i])
				case "implements":
					if i+1 >= len(fields) {
						return nil, fail("implements missing types")
					}
					i++
					for _, t := range strings.Split(fields[i], ",") {
						cls.Interfaces = append(cls.Interfaces, TypeDesc(t))
					}
				default:
					return nil, fail("unknown .class token %q", fields[i])
				}
			}
		case line == ".end class":
			if cls == nil {
				return nil, fail(".end class without .class")
			}
			if meth != nil {
				return nil, fail(".end class inside .method")
			}
			d.Classes = append(d.Classes, cls)
			cls = nil
		case strings.HasPrefix(line, ".field "):
			if cls == nil || meth != nil {
				return nil, fail(".field outside class body")
			}
			spec := strings.TrimSpace(line[len(".field "):])
			colon := strings.IndexByte(spec, ':')
			if colon < 0 {
				return nil, fail(".field missing type")
			}
			cls.Fields = append(cls.Fields, FieldRef{
				Class: cls.Name,
				Name:  spec[:colon],
				Type:  TypeDesc(spec[colon+1:]),
			})
		case strings.HasPrefix(line, ".method "):
			if cls == nil {
				return nil, fail(".method outside .class")
			}
			if meth != nil {
				return nil, fail("nested .method")
			}
			m, err := parseMethodHeader(line[len(".method "):])
			if err != nil {
				return nil, fail("%v", err)
			}
			meth = m
		case line == ".end method":
			if meth == nil {
				return nil, fail(".end method without .method")
			}
			if err := validateTargets(meth); err != nil {
				return nil, fail("%v", err)
			}
			cls.AddMethod(meth)
			meth = nil
		default:
			if meth == nil {
				return nil, fail("instruction outside method: %q", line)
			}
			ins, err := parseInstr(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			meth.Code = append(meth.Code, ins)
		}
	}
	if cls != nil {
		return nil, fmt.Errorf("dex: unterminated .class %s", cls.Name)
	}
	return d, nil
}

func parseMethodHeader(s string) (*Method, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf(".method missing name")
	}
	sig := fields[0]
	paren := strings.IndexByte(sig, '(')
	if paren < 0 {
		return nil, fmt.Errorf(".method %q missing signature", sig)
	}
	m := &Method{Name: sig[:paren], Sig: sig[paren:], NumRegs: 16}
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "regs="):
			n, err := strconv.Atoi(f[len("regs="):])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad regs %q", f)
			}
			m.NumRegs = n
		case f == "static":
			m.Static = true
		default:
			return nil, fmt.Errorf("unknown method attribute %q", f)
		}
	}
	return m, nil
}

func validateTargets(m *Method) error {
	for i, ins := range m.Code {
		switch ins.Op {
		case OpIfZ, OpGoto:
			if ins.Target < 0 || ins.Target >= len(m.Code) {
				return fmt.Errorf("instruction %d: branch target %d out of range", i, ins.Target)
			}
		}
	}
	return nil
}

// parseInstr parses one instruction line.
func parseInstr(line string) (Instr, error) {
	ins := Instr{A: -1, B: -1}
	mnemonic := line
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		mnemonic, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, ok := opByName[mnemonic]
	if !ok {
		return ins, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	ins.Op = op
	switch op {
	case OpNop, OpReturnVoid:
		return ins, nil
	case OpConstString:
		// const-string vA, "..."
		reg, lit, err := splitRegAndTail(rest)
		if err != nil {
			return ins, err
		}
		ins.A = reg
		s, err := strconv.Unquote(lit)
		if err != nil {
			return ins, fmt.Errorf("bad string literal %q: %v", lit, err)
		}
		ins.Str = s
		return ins, nil
	case OpConst:
		reg, lit, err := splitRegAndTail(rest)
		if err != nil {
			return ins, err
		}
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return ins, fmt.Errorf("bad literal %q", lit)
		}
		ins.A, ins.Lit = reg, v
		return ins, nil
	case OpMove:
		a, b, err := twoRegs(rest)
		if err != nil {
			return ins, err
		}
		ins.A, ins.B = a, b
		return ins, nil
	case OpNewInstance, OpSGet:
		reg, t, err := splitRegAndTail(rest)
		if err != nil {
			return ins, err
		}
		ins.A, ins.Str = reg, t
		return ins, nil
	case OpInvokeVirtual, OpInvokeStatic:
		return parseInvoke(ins, rest)
	case OpIGet:
		// iget vA, vObj, fieldName
		parts := splitCommas(rest, 3)
		if parts == nil {
			return ins, fmt.Errorf("iget wants 3 operands: %q", rest)
		}
		a, err := parseReg(parts[0])
		if err != nil {
			return ins, err
		}
		obj, err := parseReg(parts[1])
		if err != nil {
			return ins, err
		}
		ins.A, ins.Args, ins.Str = a, []int{obj}, parts[2]
		return ins, nil
	case OpIPut:
		// iput vObj, fieldName, vValue
		parts := splitCommas(rest, 3)
		if parts == nil {
			return ins, fmt.Errorf("iput wants 3 operands: %q", rest)
		}
		obj, err := parseReg(parts[0])
		if err != nil {
			return ins, err
		}
		val, err := parseReg(parts[2])
		if err != nil {
			return ins, err
		}
		ins.Args, ins.Str, ins.B = []int{obj}, parts[1], val
		return ins, nil
	case OpIfZ:
		parts := splitCommas(rest, 2)
		if parts == nil {
			return ins, fmt.Errorf("if-z wants 2 operands: %q", rest)
		}
		reg, err := parseReg(parts[0])
		if err != nil {
			return ins, err
		}
		t, err := strconv.Atoi(parts[1])
		if err != nil {
			return ins, fmt.Errorf("bad target %q", parts[1])
		}
		ins.A, ins.Target = reg, t
		return ins, nil
	case OpGoto:
		t, err := strconv.Atoi(rest)
		if err != nil {
			return ins, fmt.Errorf("bad target %q", rest)
		}
		ins.Target = t
		return ins, nil
	case OpReturn:
		reg, err := parseReg(rest)
		if err != nil {
			return ins, err
		}
		ins.A = reg
		return ins, nil
	}
	return ins, fmt.Errorf("unhandled opcode %v", op)
}

// parseInvoke parses "{v0, v1}, Lc;->m(sig)R -> v2" (result optional).
func parseInvoke(ins Instr, rest string) (Instr, error) {
	if !strings.HasPrefix(rest, "{") {
		return ins, fmt.Errorf("invoke wants {args}: %q", rest)
	}
	close := strings.IndexByte(rest, '}')
	if close < 0 {
		return ins, fmt.Errorf("invoke missing '}': %q", rest)
	}
	argsSpec := strings.TrimSpace(rest[1:close])
	if argsSpec != "" {
		for _, a := range strings.Split(argsSpec, ",") {
			r, err := parseReg(strings.TrimSpace(a))
			if err != nil {
				return ins, err
			}
			ins.Args = append(ins.Args, r)
		}
	}
	tail := strings.TrimSpace(rest[close+1:])
	tail = strings.TrimPrefix(tail, ",")
	tail = strings.TrimSpace(tail)
	resIdx := strings.Index(tail, "->")
	// The method ref itself contains "->"; the result arrow is the
	// LAST " -> " with surrounding spaces.
	resArrow := strings.LastIndex(tail, " -> ")
	refText := tail
	if resArrow >= 0 && resArrow > resIdx {
		refText = strings.TrimSpace(tail[:resArrow])
		reg, err := parseReg(strings.TrimSpace(tail[resArrow+4:]))
		if err != nil {
			return ins, err
		}
		ins.A = reg
	}
	ref, err := ParseMethodRef(refText)
	if err != nil {
		return ins, err
	}
	ins.Method = ref
	return ins, nil
}

func parseReg(s string) (int, error) {
	if len(s) < 2 || s[0] != 'v' {
		return -1, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return -1, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func twoRegs(rest string) (int, int, error) {
	parts := splitCommas(rest, 2)
	if parts == nil {
		return -1, -1, fmt.Errorf("want 2 registers: %q", rest)
	}
	a, err := parseReg(parts[0])
	if err != nil {
		return -1, -1, err
	}
	b, err := parseReg(parts[1])
	if err != nil {
		return -1, -1, err
	}
	return a, b, nil
}

// splitRegAndTail splits "vA, tail" returning the register and the
// remainder (which may contain commas, e.g. string literals).
func splitRegAndTail(rest string) (int, string, error) {
	comma := strings.IndexByte(rest, ',')
	if comma < 0 {
		return -1, "", fmt.Errorf("want register and operand: %q", rest)
	}
	reg, err := parseReg(strings.TrimSpace(rest[:comma]))
	if err != nil {
		return -1, "", err
	}
	return reg, strings.TrimSpace(rest[comma+1:]), nil
}

func splitCommas(s string, n int) []string {
	parts := strings.SplitN(s, ",", n)
	if len(parts) != n {
		return nil
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Disassemble renders a Dex image back to assembly text. The output
// re-assembles to an equivalent image.
func Disassemble(d *Dex) string {
	var b strings.Builder
	for _, c := range d.Classes {
		b.WriteString(".class " + string(c.Name))
		if c.Super != "" {
			b.WriteString(" extends " + string(c.Super))
		}
		if len(c.Interfaces) > 0 {
			names := make([]string, len(c.Interfaces))
			for i, t := range c.Interfaces {
				names[i] = string(t)
			}
			b.WriteString(" implements " + strings.Join(names, ","))
		}
		b.WriteByte('\n')
		for _, f := range c.Fields {
			fmt.Fprintf(&b, ".field %s:%s\n", f.Name, f.Type)
		}
		for _, m := range c.Methods {
			fmt.Fprintf(&b, ".method %s%s regs=%d", m.Name, m.Sig, m.NumRegs)
			if m.Static {
				b.WriteString(" static")
			}
			b.WriteByte('\n')
			for _, ins := range m.Code {
				b.WriteString("    " + formatInstr(ins) + "\n")
			}
			b.WriteString(".end method\n")
		}
		b.WriteString(".end class\n")
	}
	return b.String()
}

func formatInstr(ins Instr) string {
	switch ins.Op {
	case OpNop, OpReturnVoid:
		return ins.Op.String()
	case OpConstString:
		return fmt.Sprintf("const-string v%d, %q", ins.A, ins.Str)
	case OpConst:
		return fmt.Sprintf("const v%d, %d", ins.A, ins.Lit)
	case OpMove:
		return fmt.Sprintf("move v%d, v%d", ins.A, ins.B)
	case OpNewInstance:
		return fmt.Sprintf("new-instance v%d, %s", ins.A, ins.Str)
	case OpSGet:
		return fmt.Sprintf("sget v%d, %s", ins.A, ins.Str)
	case OpInvokeVirtual, OpInvokeStatic:
		args := make([]string, len(ins.Args))
		for i, r := range ins.Args {
			args[i] = fmt.Sprintf("v%d", r)
		}
		s := fmt.Sprintf("%s {%s}, %s", ins.Op, strings.Join(args, ", "), ins.Method)
		if ins.A >= 0 {
			s += fmt.Sprintf(" -> v%d", ins.A)
		}
		return s
	case OpIGet:
		return fmt.Sprintf("iget v%d, v%d, %s", ins.A, ins.Args[0], ins.Str)
	case OpIPut:
		return fmt.Sprintf("iput v%d, %s, v%d", ins.Args[0], ins.Str, ins.B)
	case OpIfZ:
		return fmt.Sprintf("if-z v%d, %d", ins.A, ins.Target)
	case OpGoto:
		return fmt.Sprintf("goto %d", ins.Target)
	case OpReturn:
		return fmt.Sprintf("return v%d", ins.A)
	}
	return ins.Op.String()
}
