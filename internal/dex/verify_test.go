package dex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVerifyAcceptsSample(t *testing.T) {
	d, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d); err != nil {
		t.Fatalf("sample rejected: %v", err)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dex)
		want   string
	}{
		{"nil image", nil, "nil image"},
		{"duplicate class", func(d *Dex) {
			d.Classes = append(d.Classes, &Class{Name: d.Classes[0].Name})
		}, "duplicate class"},
		{"bad class name", func(d *Dex) {
			d.Classes[0].Name = "NotADescriptor"
		}, "bad class descriptor"},
		{"duplicate method", func(d *Dex) {
			m := d.Classes[0].Methods[0]
			d.Classes[0].Methods = append(d.Classes[0].Methods, &Method{Name: m.Name, Sig: m.Sig})
		}, "duplicate method"},
		{"register out of frame", func(d *Dex) {
			d.Classes[0].Methods[0].Code[0].A = 99
		}, "outside frame"},
		{"bad branch", func(d *Dex) {
			m := d.Classes[0].Methods[0]
			m.Code[5].Target = 1000
		}, "out of range"},
		{"params exceed frame", func(d *Dex) {
			d.Classes[0].Methods[0].NumRegs = 0
		}, "exceed frame"},
		{"empty invoke ref", func(d *Dex) {
			m := d.Classes[0].Methods[0]
			m.Code[1].Method = MethodRef{}
		}, "empty method reference"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var d *Dex
			if c.mutate != nil {
				var err error
				d, err = Assemble(sampleAsm)
				if err != nil {
					t.Fatal(err)
				}
				c.mutate(d)
			}
			err := Verify(d)
			if err == nil {
				t.Fatalf("mutated image accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want %q", err, c.want)
			}
		})
	}
}

// TestVerifyAcceptsGeneratedImages: every random image from the
// round-trip generator verifies (random instrs stay within frames by
// construction... almost: register 8 frames with Intn(8) operands).
func TestVerifyAcceptsGeneratedImages(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDex(r)
		// randomDex uses registers 0..7 and frames ≥ 4: widen frames so
		// Verify's bound always holds.
		for _, cls := range d.Classes {
			for _, m := range cls.Methods {
				if m.NumRegs < 8 {
					m.NumRegs = 8
				}
			}
		}
		return Verify(d) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
