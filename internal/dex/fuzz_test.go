package dex_test

import (
	"testing"

	"ppchecker/internal/dex"
	"ppchecker/internal/synth"
)

// FuzzDexDecode: Decode must reject arbitrary bytes with an error,
// never a panic, and anything it accepts must survive Verify and a
// re-encode round trip without crashing.
func FuzzDexDecode(f *testing.F) {
	d, err := dex.Assemble(`
.class Lcom/example/fuzz/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v1, "content://com.android.contacts"
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    if-z v1, 3
    return-void
.end method
.end class
`)
	if err != nil {
		f.Fatal(err)
	}
	valid := dex.Encode(d)
	f.Add(valid)
	f.Add(dex.Encode(synth.BombDex()))
	f.Add([]byte{})
	f.Add([]byte("SDEX"))
	for _, seed := range synth.NewCorruptor(1).Mangle(valid, 16) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := dex.Decode(data)
		if err != nil {
			return
		}
		_ = dex.Verify(img)
		dex.Encode(img)
	})
}
