// Package dex defines SDEX, a register-based Dalvik-like bytecode used
// as the analysis substrate standing in for real DEX files. It models
// exactly the abstractions PPChecker's static analysis needs — classes,
// methods, registers, invocations, string constants, fields, and
// control flow — with a textual assembler/disassembler and a pooled
// binary encoding.
package dex

import (
	"fmt"
	"strings"
)

// TypeDesc is a JVM-style type descriptor, e.g. "Lcom/example/Foo;",
// "Ljava/lang/String;", "V", "I", "Z", "[B".
type TypeDesc string

// ClassName returns the dotted class name of an object descriptor:
// "Lcom/example/Foo;" → "com.example.Foo". Non-object types return
// their descriptor unchanged.
func (t TypeDesc) ClassName() string {
	s := string(t)
	if len(s) < 2 || s[0] != 'L' || s[len(s)-1] != ';' {
		return s
	}
	return strings.ReplaceAll(s[1:len(s)-1], "/", ".")
}

// ObjectType builds an object descriptor from a dotted or slashed
// class name.
func ObjectType(name string) TypeDesc {
	name = strings.ReplaceAll(name, ".", "/")
	return TypeDesc("L" + name + ";")
}

// MethodRef identifies a method by class, name, and signature.
type MethodRef struct {
	Class TypeDesc
	Name  string
	Sig   string // "(Ljava/lang/String;)V"
}

// String renders the reference in smali notation:
// "Lcom/a/B;->name(Ljava/lang/String;)V".
func (m MethodRef) String() string {
	return string(m.Class) + "->" + m.Name + m.Sig
}

// ParseMethodRef parses smali notation produced by String.
func ParseMethodRef(s string) (MethodRef, error) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return MethodRef{}, fmt.Errorf("dex: invalid method ref %q", s)
	}
	rest := s[arrow+2:]
	paren := strings.IndexByte(rest, '(')
	if paren < 0 {
		return MethodRef{}, fmt.Errorf("dex: invalid method ref %q: no signature", s)
	}
	return MethodRef{
		Class: TypeDesc(s[:arrow]),
		Name:  rest[:paren],
		Sig:   rest[paren:],
	}, nil
}

// ReturnType extracts the return descriptor of a signature.
func ReturnType(sig string) TypeDesc {
	if i := strings.LastIndexByte(sig, ')'); i >= 0 {
		return TypeDesc(sig[i+1:])
	}
	return "V"
}

// ParamTypes extracts the parameter descriptors of a signature.
func ParamTypes(sig string) []TypeDesc {
	open := strings.IndexByte(sig, '(')
	close := strings.LastIndexByte(sig, ')')
	if open < 0 || close < 0 || close < open {
		return nil
	}
	inner := sig[open+1 : close]
	var out []TypeDesc
	for i := 0; i < len(inner); {
		start := i
		for inner[i] == '[' {
			i++
		}
		switch inner[i] {
		case 'L':
			end := strings.IndexByte(inner[i:], ';')
			if end < 0 {
				return out
			}
			i += end + 1
		default:
			i++
		}
		out = append(out, TypeDesc(inner[start:i]))
	}
	return out
}

// FieldRef identifies an instance field.
type FieldRef struct {
	Class TypeDesc
	Name  string
	Type  TypeDesc
}

// String renders the field in smali notation "Lcom/a/B;->name:Ltype;".
func (f FieldRef) String() string {
	return string(f.Class) + "->" + f.Name + ":" + string(f.Type)
}

// Opcode enumerates SDEX instructions.
type Opcode uint8

// The instruction set. It is deliberately small: just enough to express
// data flow (const/move/invoke/field/return) and control flow (if/goto).
const (
	OpNop Opcode = iota
	// OpConstString: A = Str
	OpConstString
	// OpConst: A = Lit
	OpConst
	// OpMove: A = B
	OpMove
	// OpNewInstance: A = new Str (type descriptor)
	OpNewInstance
	// OpInvokeVirtual: A = Args[0].Method(Args[1:]); A == -1 discards
	OpInvokeVirtual
	// OpInvokeStatic: A = Method(Args); A == -1 discards
	OpInvokeStatic
	// OpSGet: A = static field named by Str (full field spec, e.g.
	// "Landroid/provider/Telephony$Sms;->CONTENT_URI:Landroid/net/Uri;")
	OpSGet
	// OpIGet: A = Args[0].Field (Field in Str as "name")
	OpIGet
	// OpIPut: Args[0].Field = B
	OpIPut
	// OpIfZ: if A == 0 jump Target
	OpIfZ
	// OpGoto: jump Target
	OpGoto
	// OpReturn: return A
	OpReturn
	// OpReturnVoid
	OpReturnVoid
)

var opNames = map[Opcode]string{
	OpNop: "nop", OpConstString: "const-string", OpConst: "const",
	OpMove: "move", OpNewInstance: "new-instance",
	OpInvokeVirtual: "invoke-virtual", OpInvokeStatic: "invoke-static",
	OpSGet: "sget", OpIGet: "iget", OpIPut: "iput", OpIfZ: "if-z", OpGoto: "goto",
	OpReturn: "return", OpReturnVoid: "return-void",
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// String returns the mnemonic.
func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one SDEX instruction.
type Instr struct {
	Op     Opcode
	A, B   int       // registers; -1 when unused
	Lit    int64     // integer literal for OpConst
	Str    string    // string constant / type / field name
	Method MethodRef // invoke target
	Args   []int     // invoke argument registers
	Target int       // branch target (instruction index)
}

// Method is a method definition with its code.
type Method struct {
	Name    string
	Sig     string
	Static  bool
	NumRegs int
	Code    []Instr

	// Class is the owning class descriptor, set when the method is
	// added to a class.
	Class TypeDesc
}

// Ref returns the method's reference.
func (m *Method) Ref() MethodRef {
	return MethodRef{Class: m.Class, Name: m.Name, Sig: m.Sig}
}

// NumParams returns the number of declared parameters (excluding the
// receiver).
func (m *Method) NumParams() int { return len(ParamTypes(m.Sig)) }

// ParamReg returns the register holding parameter i. By SDEX
// convention, parameters occupy the first registers: v0 is the receiver
// for instance methods (parameters start at v1); for static methods
// parameters start at v0.
func (m *Method) ParamReg(i int) int {
	if m.Static {
		return i
	}
	return i + 1
}

// Class is a class definition.
type Class struct {
	Name       TypeDesc
	Super      TypeDesc
	Interfaces []TypeDesc
	Fields     []FieldRef
	Methods    []*Method
}

// AddMethod appends a method and sets its owner.
func (c *Class) AddMethod(m *Method) {
	m.Class = c.Name
	c.Methods = append(c.Methods, m)
}

// Method finds a method by name and signature; sig == "" matches the
// first method with the name.
func (c *Class) Method(name, sig string) *Method {
	for _, m := range c.Methods {
		if m.Name == name && (sig == "" || m.Sig == sig) {
			return m
		}
	}
	return nil
}

// Dex is a full bytecode image.
type Dex struct {
	Classes []*Class
}

// Class finds a class by descriptor.
func (d *Dex) Class(name TypeDesc) *Class {
	for _, c := range d.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Lookup resolves a method reference to its definition, walking up the
// superclass chain for virtual dispatch.
func (d *Dex) Lookup(ref MethodRef) *Method {
	for cls := d.Class(ref.Class); cls != nil; {
		if m := cls.Method(ref.Name, ref.Sig); m != nil {
			return m
		}
		if cls.Super == "" {
			return nil
		}
		cls = d.Class(cls.Super)
	}
	return nil
}

// MethodCount returns the total number of methods.
func (d *Dex) MethodCount() int {
	n := 0
	for _, c := range d.Classes {
		n += len(c.Methods)
	}
	return n
}
