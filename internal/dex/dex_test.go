package dex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const sampleAsm = `
# sample program: read device id and log it
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.field token:Ljava/lang/String;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v2, "content://contacts"
    invoke-static {v2}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v3
    invoke-virtual {v0, v3}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v4
    iput v0, token, v4
    iget v5, v0, token
    if-z v5, 7
    invoke-static {v5}, Landroid/util/Log;->d(Ljava/lang/String;)I
    return-void
.end method
.method helper()Ljava/lang/String; regs=4 static
    const v0, 42
    const-string v1, "hello"
    move v2, v1
    return v2
.end method
.end class
.class Lcom/example/app/Util;
.end class
`

func TestAssemble(t *testing.T) {
	d, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Classes) != 2 {
		t.Fatalf("classes = %d", len(d.Classes))
	}
	c := d.Class("Lcom/example/app/MainActivity;")
	if c == nil {
		t.Fatal("MainActivity not found")
	}
	if c.Super != "Landroid/app/Activity;" {
		t.Fatalf("super = %q", c.Super)
	}
	m := c.Method("onCreate", "")
	if m == nil {
		t.Fatal("onCreate not found")
	}
	if len(m.Code) != 8 {
		t.Fatalf("code len = %d", len(m.Code))
	}
	if m.Code[0].Op != OpConstString || m.Code[0].Str != "content://contacts" {
		t.Fatalf("instr 0 = %+v", m.Code[0])
	}
	inv := m.Code[1]
	if inv.Op != OpInvokeStatic || inv.Method.Name != "parse" || inv.A != 3 {
		t.Fatalf("instr 1 = %+v", inv)
	}
	h := c.Method("helper", "")
	if h == nil || !h.Static {
		t.Fatalf("helper = %+v", h)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		".method foo()V\nreturn-void\n.end method",                  // method outside class
		".class La;\n.method x()V\ngoto 5\n.end method\n.end class", // bad target
		".class La;\n.method x()V\nbogus-op v1\n.end method\n.end class",
		".class La;",             // unterminated
		".class La;\n.class Lb;", // nested
		".class La;\n.method x()V\nconst-string v0 \n.end method\n.end class",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	d, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(d)
	d2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(normalize(d), normalize(d2)) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, Disassemble(d2))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	d, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(d)
	d2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(d), normalize(d2)) {
		t.Fatalf("binary round trip mismatch")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	d, _ := Assemble(sampleAsm)
	data := Encode(d)
	if _, err := Decode(data[:3]); err == nil {
		t.Error("short magic accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncated input (%d bytes) accepted", cut)
		}
	}
}

// randomDex builds a pseudo-random but well-formed Dex image.
func randomDex(r *rand.Rand) *Dex {
	d := &Dex{}
	nc := 1 + r.Intn(4)
	for c := 0; c < nc; c++ {
		cls := &Class{Name: TypeDesc(randName(r, "Lcls", c))}
		if r.Intn(2) == 0 {
			cls.Super = "Landroid/app/Activity;"
		}
		nm := r.Intn(4)
		for mi := 0; mi < nm; mi++ {
			m := &Method{
				Name:    randIdent(r) + string(rune('a'+mi)), // unique per class
				Sig:     "(Ljava/lang/String;)V",
				Static:  r.Intn(2) == 0,
				NumRegs: 4 + r.Intn(12),
			}
			ncode := r.Intn(10)
			for k := 0; k < ncode; k++ {
				m.Code = append(m.Code, randInstr(r, ncode))
			}
			cls.AddMethod(m)
		}
		d.Classes = append(d.Classes, cls)
	}
	return d
}

func randName(r *rand.Rand, prefix string, i int) string {
	return prefix + string(rune('A'+i)) + "/" + randIdent(r) + ";"
}

func randIdent(r *rand.Rand) string {
	letters := "abcdefgh"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func randInstr(r *rand.Rand, codeLen int) Instr {
	switch r.Intn(8) {
	case 0:
		return Instr{Op: OpConstString, A: r.Intn(8), B: -1, Str: randIdent(r)}
	case 1:
		return Instr{Op: OpConst, A: r.Intn(8), B: -1, Lit: int64(r.Intn(1000) - 500)}
	case 2:
		return Instr{Op: OpMove, A: r.Intn(8), B: r.Intn(8)}
	case 3:
		res := -1
		if r.Intn(2) == 0 {
			res = r.Intn(8)
		}
		return Instr{
			Op: OpInvokeVirtual, A: res, B: -1,
			Method: MethodRef{Class: "Lx/Y;", Name: randIdent(r), Sig: "()V"},
			Args:   []int{r.Intn(8)},
		}
	case 4:
		return Instr{Op: OpIGet, A: r.Intn(8), B: -1, Args: []int{r.Intn(8)}, Str: randIdent(r)}
	case 5:
		return Instr{Op: OpIPut, A: -1, B: r.Intn(8), Args: []int{r.Intn(8)}, Str: randIdent(r)}
	case 6:
		return Instr{Op: OpIfZ, A: r.Intn(8), B: -1, Target: r.Intn(codeLen)}
	default:
		return Instr{Op: OpReturnVoid, A: -1, B: -1}
	}
}

// TestBinaryRoundTripProperty: Decode(Encode(d)) == d for random images.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDex(r)
		d2, err := Decode(Encode(d))
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return reflect.DeepEqual(normalize(d), normalize(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAsmRoundTripProperty: assembly text round-trips for random images.
func TestAsmRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDex(r)
		d2, err := Assemble(Disassemble(d))
		if err != nil {
			t.Logf("assemble error: %v", err)
			return false
		}
		return reflect.DeepEqual(normalize(d), normalize(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// normalize canonicalizes empty-vs-nil slices so DeepEqual compares
// structure, not allocation accidents.
func normalize(d *Dex) *Dex {
	for _, c := range d.Classes {
		if len(c.Interfaces) == 0 {
			c.Interfaces = nil
		}
		if len(c.Fields) == 0 {
			c.Fields = nil
		}
		for _, m := range c.Methods {
			if len(m.Code) == 0 {
				m.Code = nil
			}
			for i := range m.Code {
				if len(m.Code[i].Args) == 0 {
					m.Code[i].Args = nil
				}
			}
		}
	}
	return d
}

func TestMethodRefParse(t *testing.T) {
	ref, err := ParseMethodRef("Landroid/util/Log;->d(Ljava/lang/String;)I")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Class != "Landroid/util/Log;" || ref.Name != "d" || ref.Sig != "(Ljava/lang/String;)I" {
		t.Fatalf("ref = %+v", ref)
	}
	if _, err := ParseMethodRef("no-arrow"); err == nil {
		t.Error("bad ref accepted")
	}
	if _, err := ParseMethodRef("La;->noparen"); err == nil {
		t.Error("ref without signature accepted")
	}
}

func TestSignatureHelpers(t *testing.T) {
	sig := "(Ljava/lang/String;I[BLandroid/net/Uri;)Landroid/database/Cursor;"
	params := ParamTypes(sig)
	want := []TypeDesc{"Ljava/lang/String;", "I", "[B", "Landroid/net/Uri;"}
	if !reflect.DeepEqual(params, want) {
		t.Fatalf("params = %v", params)
	}
	if rt := ReturnType(sig); rt != "Landroid/database/Cursor;" {
		t.Fatalf("return = %v", rt)
	}
	if ParamTypes("()V") != nil {
		t.Fatal("empty params not nil")
	}
}

func TestTypeDescHelpers(t *testing.T) {
	if got := TypeDesc("Lcom/example/Foo;").ClassName(); got != "com.example.Foo" {
		t.Fatalf("ClassName = %q", got)
	}
	if got := ObjectType("com.example.Foo"); got != "Lcom/example/Foo;" {
		t.Fatalf("ObjectType = %q", got)
	}
	if got := TypeDesc("I").ClassName(); got != "I" {
		t.Fatalf("primitive ClassName = %q", got)
	}
}

func TestLookupVirtualDispatch(t *testing.T) {
	src := `
.class Lbase/A;
.method greet()V regs=2
    return-void
.end method
.end class
.class Lsub/B; extends Lbase/A;
.end class
`
	d, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Lookup(MethodRef{Class: "Lsub/B;", Name: "greet", Sig: "()V"})
	if m == nil || m.Class != "Lbase/A;" {
		t.Fatalf("lookup through super failed: %+v", m)
	}
	if d.Lookup(MethodRef{Class: "Lsub/B;", Name: "missing", Sig: "()V"}) != nil {
		t.Fatal("missing method resolved")
	}
}

// TestDecodeRandomBytesNeverPanics: hostile SDEX bytes produce errors,
// not panics or runaway allocations.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeBitFlips: every single-byte corruption of a valid image is
// handled without panicking.
func TestDecodeBitFlips(t *testing.T) {
	d, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(d)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		_, _ = Decode(mut)
	}
}
