package negation

import (
	"testing"

	"ppchecker/internal/nlp"
)

func TestIsNegative(t *testing.T) {
	cases := map[string]bool{
		// the paper's two negation sites (§III-B Step 5)
		"we will not collect information":           true,
		"nothing will be collected":                 true,
		"we will never share your contacts":         true,
		"no personal information will be collected": true,
		"we collect your location":                  false,
		"your information will be used":             false,
		"we will share your data with partners":     false,
		// negative verbs / adjectives
		"we are unable to collect your location": true,
		// hardly/rarely class
		"we hardly collect your data": true,
		// do-support
		"we do not sell your personal information": true,
		// cannot as a single token
		"we cannot collect your location": true,
	}
	for sent, want := range cases {
		p := nlp.ParseSentence(sent)
		if got := IsNegative(p); got != want {
			t.Errorf("IsNegative(%q) = %v, want %v (root %d)", sent, got, want, p.Root)
		}
	}
}

func TestDoubleNegationTogglesBack(t *testing.T) {
	// "not refuse to share" — two negation markers cancel.
	p := nlp.ParseSentence("we will not refuse to share your data")
	if IsNegative(p) {
		t.Fatalf("double negation reported negative")
	}
}

func TestIsNegativeNilSafe(t *testing.T) {
	if IsNegative(nil) {
		t.Fatal("nil parse negative")
	}
	p := nlp.ParseSentence("privacy policy") // no predicate
	if IsNegative(p) {
		t.Fatal("rootless parse negative")
	}
}

func TestIsNegWordClasses(t *testing.T) {
	for _, w := range []string{"not", "never", "no", "nothing", "unable", "prevent", "hardly"} {
		if !IsNegWord(w) {
			t.Errorf("IsNegWord(%q) = false", w)
		}
	}
	for _, w := range []string{"collect", "always", "yes", "information"} {
		if IsNegWord(w) {
			t.Errorf("IsNegWord(%q) = true", w)
		}
	}
}

func TestContainsNegation(t *testing.T) {
	if !ContainsNegation("We will not collect anything.") {
		t.Fatal("negation missed")
	}
	if ContainsNegation("We will collect your location.") {
		t.Fatal("false negation")
	}
	// punctuation-attached negation words
	if !ContainsNegation("Never! We promise.") {
		t.Fatal("punctuated negation missed")
	}
}

// TestIsNegativeScopeEdges pins the scope decisions the metamorphic
// negation-neutral transform relies on: negation inside a subordinate
// clause must not flip the main predicate, negation on the main verb
// must, and the correlative "not only ... but also" idiom is additive,
// not negating.
func TestIsNegativeScopeEdges(t *testing.T) {
	cases := []struct {
		sent string
		want bool
	}{
		// Negation confined to a subordinate (constraint) clause.
		{"if you do not agree, we will collect your location information.", false},
		{"we collect your location when you do not disable gps.", false},
		{"unless you opt out, we will share your data with our partners.", false},
		// Negation on the main verb, with a subordinate clause present.
		{"we will not collect your location if you disable gps.", true},
		{"when you register, we will never share your contacts.", true},
		// The "not only ... but also" correlative is not a negation.
		{"we will not only collect your location but also your contacts.", false},
		{"we do not only collect your location but also your contacts.", false},
		// Plain main-verb negation still negates.
		{"we will not collect your location.", true},
		{"we do not share your contacts.", true},
		{"we will never store your messages.", true},
		// Inherently negative root verb.
		{"we prevent third parties from accessing your data.", true},
	}
	for _, tc := range cases {
		p := nlp.ParseSentence(tc.sent)
		if got := IsNegative(p); got != tc.want {
			t.Errorf("IsNegative(%q) = %v, want %v (root %d)", tc.sent, got, tc.want, p.Root)
		}
	}
}
