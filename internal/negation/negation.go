// Package negation decides whether a parsed policy sentence is negative
// (§III-B Step 5 of the paper). Negation is checked at two sites: the
// subject ("nothing will be collected") and the modifiers of the root
// word ("we will not collect information"). The word list follows the
// classes of the paper's source [32]: negative verbs, adverbs,
// adjectives, and determiners.
package negation

import (
	"strings"

	"ppchecker/internal/nlp"
)

// Word classes of the negation lexicon.
var (
	negVerbs = map[string]bool{
		"prevent": true, "prohibit": true, "forbid": true, "refuse": true,
		"decline": true, "avoid": true, "deny": true, "reject": true,
		"cease": true, "stop": true,
	}
	negAdverbs = map[string]bool{
		"not": true, "n't": true, "never": true, "hardly": true,
		"rarely": true, "seldom": true, "scarcely": true, "barely": true,
		"neither": true, "nor": true, "nowise": true,
	}
	negAdjectives = map[string]bool{
		"unable": true, "unwilling": true, "unavailable": true,
		"impossible": true, "unauthorized": true,
	}
	negDeterminers = map[string]bool{
		"no": true, "none": true, "nothing": true, "nobody": true,
		"neither": true,
	}
)

// IsNegWord reports whether a lowercased word appears in any negation
// class.
func IsNegWord(w string) bool {
	return negVerbs[w] || negAdverbs[w] || negAdjectives[w] || negDeterminers[w]
}

// IsNegative reports whether the sentence parse is negative with
// respect to its root predicate. Double negation ("we will not refuse
// to share") toggles back to positive.
func IsNegative(p *nlp.Parse) bool {
	if p == nil || p.Root < 0 {
		return false
	}
	count := 0
	// Site 1: the subject and its chunk ("nothing", "no information").
	if s := p.Subject(p.Root); s >= 0 {
		if negDeterminers[p.Tokens[s].Lower] {
			count++
		}
		for _, d := range p.Dependents(s, nlp.RelDet) {
			if negDeterminers[p.Tokens[d].Lower] {
				count++
			}
		}
	}
	// Site 2: modifiers of the root word.
	count += rootNegations(p, p.Root)
	return count%2 == 1
}

// rootNegations counts negation markers attached to (or inherent in)
// the predicate at idx, following xcomp chains so "we are unable to
// collect" and "we refuse to share" are caught.
func rootNegations(p *nlp.Parse, idx int) int {
	count := 0
	for _, d := range p.NegDeps(idx) {
		// The correlative "not only ... but (also)" is additive, not
		// negating: "we will not only collect X but also Y" asserts
		// both conjuncts.
		if p.Tokens[d].Lower == "not" && d+1 < len(p.Tokens) && p.Tokens[d+1].Lower == "only" {
			continue
		}
		count++
	}
	w := p.Tokens[idx].Lower
	if negVerbs[nlp.Lemma(w)] || negAdjectives[w] {
		count++
	}
	// "cannot" is a single modal token carrying its own negation.
	for _, a := range p.Dependents(idx, nlp.RelAux) {
		if p.Tokens[a].Lower == "cannot" {
			count++
		}
	}
	return count
}

// ContainsNegation reports whether any token of the raw sentence is a
// negation word; it is the coarse check the pattern miner uses to build
// its negative sentence set.
func ContainsNegation(sentence string) bool {
	for _, f := range strings.Fields(strings.ToLower(sentence)) {
		f = strings.Trim(f, ".,;:!?\"'()")
		if IsNegWord(f) {
			return true
		}
	}
	return false
}
