// Package bundle reads and writes app bundles and corpus trees on
// disk — the interchange format between cmd/ppgen (which writes a
// corpus) and cmd/ppchecker (which analyzes one app):
//
//	<corpus>/
//	  libs/<LibName>.html
//	  apps/<pkg>/policy.html
//	  apps/<pkg>/description.txt
//	  apps/<pkg>/app.apk
//	  apps/<pkg>/libs.txt
//	  truth.json
package bundle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// File names inside an app bundle.
const (
	FilePolicy      = "policy.html"
	FileDescription = "description.txt"
	FileAPK         = "app.apk"
	FileLibs        = "libs.txt"
	FileTruth       = "truth.json"
	DirApps         = "apps"
	DirLibs         = "libs"
)

// TruthEntry pairs a package name with its ground-truth labels in
// truth.json.
type TruthEntry struct {
	Pkg   string
	Truth synth.GroundTruth
}

// WriteApp writes one app bundle directory.
func WriteApp(dir string, app *core.App) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	apkData, err := apk.Encode(app.APK)
	if err != nil {
		return fmt.Errorf("bundle: encode %s: %w", app.Name, err)
	}
	files := map[string][]byte{
		FilePolicy:      []byte(app.PolicyHTML),
		FileDescription: []byte(app.Description),
		FileAPK:         apkData,
		FileLibs:        []byte(libList(app.LibPolicies)),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadApp loads one app bundle. libsDir may be empty, in which case no
// library policies are attached; missing library policies are skipped,
// mirroring the paper's handling of libs without English policies.
func ReadApp(dir, libsDir string) (*core.App, error) {
	policy, err := os.ReadFile(filepath.Join(dir, FilePolicy))
	if err != nil {
		return nil, err
	}
	description, err := os.ReadFile(filepath.Join(dir, FileDescription))
	if err != nil {
		return nil, err
	}
	apkData, err := os.ReadFile(filepath.Join(dir, FileAPK))
	if err != nil {
		return nil, err
	}
	a, err := apk.Decode(apkData)
	if err != nil {
		return nil, fmt.Errorf("bundle: parse %s: %w", filepath.Join(dir, FileAPK), err)
	}
	app := &core.App{
		Name:        a.Manifest.Package,
		PolicyHTML:  string(policy),
		Description: string(description),
		APK:         a,
		LibPolicies: map[string]string{},
	}
	libData, err := os.ReadFile(filepath.Join(dir, FileLibs))
	if err != nil || libsDir == "" {
		return app, nil
	}
	for _, name := range strings.Split(strings.TrimSpace(string(libData)), "\n") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(libsDir, name+".html"))
		if err != nil {
			continue
		}
		app.LibPolicies[name] = string(data)
	}
	return app, nil
}

// WriteDataset writes a whole corpus tree.
func WriteDataset(ds *synth.Dataset, out string) error {
	libDir := filepath.Join(out, DirLibs)
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		return err
	}
	for name, policy := range ds.LibPolicies {
		if err := os.WriteFile(filepath.Join(libDir, name+".html"), []byte(policy), 0o644); err != nil {
			return err
		}
	}
	truths := make([]TruthEntry, 0, len(ds.Apps))
	for _, ga := range ds.Apps {
		if err := WriteApp(filepath.Join(out, DirApps, ga.App.Name), ga.App); err != nil {
			return err
		}
		truths = append(truths, TruthEntry{Pkg: ga.App.Name, Truth: ga.Truth})
	}
	truthData, err := json.MarshalIndent(truths, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, FileTruth), truthData, 0o644)
}

// ReadTruth loads a corpus's ground-truth labels.
func ReadTruth(corpusDir string) ([]TruthEntry, error) {
	data, err := os.ReadFile(filepath.Join(corpusDir, FileTruth))
	if err != nil {
		return nil, err
	}
	var entries []TruthEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("bundle: truth.json: %w", err)
	}
	return entries, nil
}

// ListApps returns the app bundle directories of a corpus in sorted
// order.
func ListApps(corpusDir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(corpusDir, DirApps))
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(corpusDir, DirApps, e.Name()))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func libList(libPolicies map[string]string) string {
	names := make([]string, 0, len(libPolicies))
	for name := range libPolicies {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "\n")
}
