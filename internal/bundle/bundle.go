// Package bundle reads and writes app bundles and corpus trees on
// disk — the interchange format between cmd/ppgen (which writes a
// corpus) and cmd/ppchecker (which analyzes one app):
//
//	<corpus>/
//	  libs/<LibName>.html
//	  apps/<pkg>/policy.html
//	  apps/<pkg>/description.txt
//	  apps/<pkg>/app.apk
//	  apps/<pkg>/libs.txt
//	  truth.json
package bundle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unicode/utf8"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// File names inside an app bundle.
const (
	FilePolicy      = "policy.html"
	FileDescription = "description.txt"
	FileAPK         = "app.apk"
	FileLibs        = "libs.txt"
	FileTruth       = "truth.json"
	DirApps         = "apps"
	DirLibs         = "libs"
)

// TruthEntry pairs a package name with its ground-truth labels in
// truth.json.
type TruthEntry struct {
	Pkg   string
	Truth synth.GroundTruth
}

// FileError is a typed per-file bundle error: it names the bundle
// directory and file, and distinguishes a missing file from a corrupt
// one.
type FileError struct {
	Dir  string
	File string
	Err  error
	// Missing is true when the file does not exist (vs exists but is
	// unreadable or corrupt).
	Missing bool
}

// Error implements the error interface.
func (e *FileError) Error() string {
	kind := "corrupt"
	if e.Missing {
		kind = "missing"
	}
	return fmt.Sprintf("bundle: %s file %s in %s: %v", kind, e.File, e.Dir, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *FileError) Unwrap() error { return e.Err }

// fileError builds a FileError, classifying os.IsNotExist as Missing.
func fileError(dir, file string, err error) *FileError {
	return &FileError{Dir: dir, File: file, Err: err, Missing: os.IsNotExist(err)}
}

// WriteApp writes one app bundle directory.
func WriteApp(dir string, app *core.App) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	apkData, err := apk.Encode(app.APK)
	if err != nil {
		return fmt.Errorf("bundle: encode %s: %w", app.Name, err)
	}
	files := map[string][]byte{
		FilePolicy:      []byte(app.PolicyHTML),
		FileDescription: []byte(app.Description),
		FileAPK:         apkData,
		FileLibs:        []byte(libList(app.LibPolicies)),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadApp loads one app bundle. The required files are policy.html and
// app.apk: a missing or corrupt one fails with a *FileError naming the
// file. description.txt and libs.txt are optional — when absent the app
// proceeds with an empty description / no libraries. libsDir may be
// empty, in which case no library policies are attached; missing
// library policies are skipped, mirroring the paper's handling of libs
// without English policies.
func ReadApp(dir, libsDir string) (*core.App, error) {
	app, ferrs := ReadAppLenient(dir, libsDir)
	for _, fe := range ferrs {
		if fe.File == FilePolicy || fe.File == FileAPK {
			return nil, fe
		}
	}
	return app, nil
}

// ReadAppLenient loads whatever parts of an app bundle it can, never
// failing outright: each unreadable or corrupt file is reported as a
// *FileError while the corresponding App field stays zero. Optional
// files (description.txt, libs.txt) produce no error when merely
// absent. The robust corpus runner uses this to degrade per-file
// instead of dropping the whole app.
func ReadAppLenient(dir, libsDir string) (*core.App, []*FileError) {
	var ferrs []*FileError
	app := &core.App{
		Name:        filepath.Base(dir),
		LibPolicies: map[string]string{},
	}

	if policy, err := os.ReadFile(filepath.Join(dir, FilePolicy)); err != nil {
		ferrs = append(ferrs, fileError(dir, FilePolicy, err))
	} else if !utf8.Valid(policy) {
		// The raw bytes still reach the app so CheckSafe can report the
		// extraction failure with full context, but the bundle layer
		// flags the corruption too.
		app.PolicyHTML = string(policy)
		ferrs = append(ferrs, &FileError{Dir: dir, File: FilePolicy,
			Err: fmt.Errorf("not valid UTF-8")})
	} else {
		app.PolicyHTML = string(policy)
	}

	if description, err := os.ReadFile(filepath.Join(dir, FileDescription)); err != nil {
		if !os.IsNotExist(err) {
			ferrs = append(ferrs, fileError(dir, FileDescription, err))
		}
	} else {
		app.Description = string(description)
	}

	apkData, err := os.ReadFile(filepath.Join(dir, FileAPK))
	if err != nil {
		ferrs = append(ferrs, fileError(dir, FileAPK, err))
	} else if a, err := apk.Decode(apkData); err != nil {
		ferrs = append(ferrs, &FileError{Dir: dir, File: FileAPK, Err: err})
	} else {
		app.APK = a
		app.Name = a.Manifest.Package
	}

	libData, err := os.ReadFile(filepath.Join(dir, FileLibs))
	if err != nil || libsDir == "" {
		return app, ferrs
	}
	for _, name := range strings.Split(strings.TrimSpace(string(libData)), "\n") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(libsDir, name+".html"))
		if err != nil {
			continue
		}
		app.LibPolicies[name] = string(data)
	}
	return app, ferrs
}

// WriteDataset writes a whole corpus tree.
func WriteDataset(ds *synth.Dataset, out string) error {
	libDir := filepath.Join(out, DirLibs)
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		return err
	}
	for name, policy := range ds.LibPolicies {
		if err := os.WriteFile(filepath.Join(libDir, name+".html"), []byte(policy), 0o644); err != nil {
			return err
		}
	}
	truths := make([]TruthEntry, 0, len(ds.Apps))
	for _, ga := range ds.Apps {
		if err := WriteApp(filepath.Join(out, DirApps, ga.App.Name), ga.App); err != nil {
			return err
		}
		truths = append(truths, TruthEntry{Pkg: ga.App.Name, Truth: ga.Truth})
	}
	truthData, err := json.MarshalIndent(truths, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, FileTruth), truthData, 0o644)
}

// ReadTruth loads a corpus's ground-truth labels.
func ReadTruth(corpusDir string) ([]TruthEntry, error) {
	data, err := os.ReadFile(filepath.Join(corpusDir, FileTruth))
	if err != nil {
		return nil, err
	}
	var entries []TruthEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("bundle: truth.json: %w", err)
	}
	return entries, nil
}

// ListApps returns the app bundle directories of a corpus in sorted
// order. Directories that contain neither a policy nor an APK are not
// app bundles (editor droppings, VCS metadata) and are skipped rather
// than failing the listing.
func ListApps(corpusDir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(corpusDir, DirApps))
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(corpusDir, DirApps, e.Name())
		if !isBundleDir(dir) {
			continue
		}
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isBundleDir reports whether a directory looks like an app bundle:
// it holds at least one of the required files.
func isBundleDir(dir string) bool {
	for _, name := range []string{FilePolicy, FileAPK} {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && !st.IsDir() {
			return true
		}
	}
	return false
}

func libList(libPolicies map[string]string) string {
	names := make([]string, 0, len(libPolicies))
	for name := range libPolicies {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "\n")
}
