package bundle

import (
	"os"
	"path/filepath"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

func smallDataset(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 99, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestWriteAndReadApp(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	ga := ds.Apps[0]
	appDir := filepath.Join(dir, "apps", ga.App.Name)
	if err := WriteApp(appDir, ga.App); err != nil {
		t.Fatal(err)
	}
	libsDir := filepath.Join(dir, "libs")
	if err := os.MkdirAll(libsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, p := range ga.App.LibPolicies {
		if err := os.WriteFile(filepath.Join(libsDir, name+".html"), []byte(p), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := ReadApp(appDir, libsDir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != ga.App.Name {
		t.Errorf("name = %q, want %q", loaded.Name, ga.App.Name)
	}
	if loaded.PolicyHTML != ga.App.PolicyHTML {
		t.Error("policy differs after round trip")
	}
	if loaded.Description != ga.App.Description {
		t.Error("description differs after round trip")
	}
	if len(loaded.LibPolicies) != len(ga.App.LibPolicies) {
		t.Errorf("lib policies = %d, want %d", len(loaded.LibPolicies), len(ga.App.LibPolicies))
	}
	if loaded.APK.Manifest.Package != ga.App.APK.Manifest.Package {
		t.Error("manifest package differs")
	}
}

// TestRoundTripPreservesDetection: a report computed on an app loaded
// from disk must match the in-memory report.
func TestRoundTripPreservesDetection(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	checker := core.NewChecker()
	// App 0 is the birthdaylist-style incorrect app; app 2 is the
	// easyxapp-style retained app.
	for _, i := range []int{0, 2, 200} {
		ga := ds.Apps[i]
		appDir := filepath.Join(dir, ga.App.Name)
		if err := WriteApp(appDir, ga.App); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadApp(appDir, "")
		if err != nil {
			t.Fatal(err)
		}
		loaded.LibPolicies = ga.App.LibPolicies // lib store not written here
		want := checker.Check(ga.App)
		got := checker.Check(loaded)
		if want.Summary() != got.Summary() {
			t.Errorf("app %d report differs after round trip:\n%s\nvs\n%s", i, want.Summary(), got.Summary())
		}
	}
}

func TestWriteDatasetAndList(t *testing.T) {
	ds := smallDataset(t)
	// Keep the test quick: write only a slice of the corpus.
	small := &synth.Dataset{Apps: ds.Apps[:10], LibPolicies: ds.LibPolicies}
	dir := t.TempDir()
	if err := WriteDataset(small, dir); err != nil {
		t.Fatal(err)
	}
	apps, err := ListApps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 10 {
		t.Fatalf("listed %d apps, want 10", len(apps))
	}
	truths, err := ReadTruth(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(truths) != 10 {
		t.Fatalf("truth entries = %d, want 10", len(truths))
	}
	if truths[0].Pkg == "" {
		t.Fatal("empty package in truth")
	}
	// Every app dir must load.
	for _, appDir := range apps {
		if _, err := ReadApp(appDir, filepath.Join(dir, DirLibs)); err != nil {
			t.Fatalf("ReadApp(%s): %v", appDir, err)
		}
	}
}

func TestReadAppErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadApp(dir, ""); err == nil {
		t.Fatal("empty dir accepted")
	}
	// Corrupt APK.
	if err := os.WriteFile(filepath.Join(dir, FilePolicy), []byte("<p>x</p>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileDescription), []byte("d"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileAPK), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadApp(dir, ""); err == nil {
		t.Fatal("corrupt apk accepted")
	}
}

func TestReadTruthErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadTruth(dir); err == nil {
		t.Fatal("missing truth.json accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, FileTruth), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTruth(dir); err == nil {
		t.Fatal("bad truth.json accepted")
	}
}
