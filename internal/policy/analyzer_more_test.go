package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"ppchecker/internal/verbs"
)

// TestSentenceFormsTable drives the analyzer over a broad table of
// sentence forms, checking category, polarity, and resource.
func TestSentenceFormsTable(t *testing.T) {
	cases := []struct {
		sentence string
		category verbs.Category
		negative bool
		resource string
	}{
		// P1 actives across categories
		{"We collect your location.", verbs.Collect, false, "location"},
		{"We may gather usage data about your device.", verbs.Collect, false, "usage data"},
		{"We process your email address.", verbs.Use, false, "email address"},
		{"We retain your chat history.", verbs.Retain, false, "chat history"},
		{"We share your phone number with partners.", verbs.Disclose, false, "phone number"},
		{"We transfer your account information to our affiliates.", verbs.Disclose, false, "account information"},
		// P2 passives
		{"Your location will be collected.", verbs.Collect, false, "location"},
		{"Your contacts may be stored by our servers.", verbs.Retain, false, "contacts"},
		{"Your device identifier will be shared with advertisers.", verbs.Disclose, false, "device identifier"},
		// P3/P4
		{"We are allowed to access your calendar entries.", verbs.Collect, false, "calendar entries"},
		{"We are able to use your browsing history.", verbs.Use, false, "browsing history"},
		// P5 purpose
		{"We use cookies to track your location.", verbs.Collect, false, "location"},
		// negatives in several shapes
		{"We will not collect your location.", verbs.Collect, true, "location"},
		{"We do not share your contacts.", verbs.Disclose, true, "contacts"},
		{"We never store your messages.", verbs.Retain, true, "messages"},
		{"Your phone number will not be disclosed.", verbs.Disclose, true, "phone number"},
		{"We are not collecting your photos.", verbs.Collect, true, "photos"},
		{"Nothing will be collected.", verbs.Collect, true, "nothing"},
	}
	a := NewAnalyzer()
	for _, c := range cases {
		res := a.AnalyzeText(c.sentence)
		var st *Statement
		for i := range res.Statements {
			if res.Statements[i].Category == c.category {
				st = &res.Statements[i]
				break
			}
		}
		if st == nil {
			t.Errorf("%q: no %v statement (got %+v)", c.sentence, c.category, res.Statements)
			continue
		}
		if st.Negative != c.negative {
			t.Errorf("%q: negative = %v, want %v", c.sentence, st.Negative, c.negative)
		}
		found := false
		for _, r := range st.Resources {
			if strings.Contains(r, c.resource) || strings.Contains(c.resource, r) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: resources %v missing %q", c.sentence, st.Resources, c.resource)
		}
	}
}

// TestAnalyzerDeterministic: repeated analysis of the same policy is
// identical (the checker caches rely on it).
func TestAnalyzerDeterministic(t *testing.T) {
	text := `We may collect your location when you use the app.
We will not share your contacts.
Your email address will be stored.
We use cookies to improve the service.`
	a := NewAnalyzer()
	first := a.AnalyzeText(text)
	for i := 0; i < 5; i++ {
		again := a.AnalyzeText(text)
		if strings.Join(first.All(), "|") != strings.Join(again.All(), "|") {
			t.Fatalf("run %d differs", i)
		}
		if len(first.Statements) != len(again.Statements) {
			t.Fatalf("statement count differs on run %d", i)
		}
	}
}

// TestAnalyzerTotalProperty: arbitrary text never panics and produces
// consistent sets (every resource in a set appears in some statement).
func TestAnalyzerTotalProperty(t *testing.T) {
	a := NewAnalyzer()
	f := func(s string) bool {
		res := a.AnalyzeText(s)
		inStatements := map[string]bool{}
		for _, st := range res.Statements {
			for _, r := range st.Resources {
				inStatements[r] = true
			}
		}
		for _, set := range [][]string{
			res.Collect, res.Use, res.Retain, res.Disclose,
			res.NotCollect, res.NotUse, res.NotRetain, res.NotDisclose,
		} {
			for _, r := range set {
				if !inStatements[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPositiveAndNegativeSetsDisjointPerSentence: one sentence cannot
// put the same resource in both polarities of a category.
func TestPolaritySeparation(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We will not collect your location. We may collect your email address.")
	for _, r := range res.NotCollect {
		for _, p := range res.Collect {
			if r == p {
				t.Fatalf("resource %q in both polarities", r)
			}
		}
	}
}

// TestNotSetAccessors exercises the per-category accessors.
func TestSetAccessors(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText(`We will not collect your location.
We will not use your cookies.
We will not store your messages.
We will not share your contacts.`)
	for _, c := range verbs.Categories() {
		if len(res.NotSet(c)) == 0 {
			t.Errorf("NotSet(%v) empty", c)
		}
		if len(res.PositiveSet(c)) != 0 {
			t.Errorf("PositiveSet(%v) = %v", c, res.PositiveSet(c))
		}
	}
	if res.NotSet(verbs.None) != nil || res.PositiveSet(verbs.None) != nil {
		t.Error("None category returned sets")
	}
}
