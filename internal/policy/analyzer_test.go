package policy

import (
	"strings"
	"testing"

	"ppchecker/internal/verbs"
)

func TestAnalyzeCollectSentence(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We will collect your location and your device ID.")
	if len(res.Collect) == 0 {
		t.Fatalf("Collect set empty; statements: %+v", res.Statements)
	}
	joined := strings.Join(res.Collect, "|")
	if !strings.Contains(joined, "location") || !strings.Contains(joined, "device id") {
		t.Fatalf("Collect = %v", res.Collect)
	}
}

func TestAnalyzeNegativeSentence(t *testing.T) {
	a := NewAnalyzer()
	// com.easyxapp.secret's sentence from §II-B of the paper.
	res := a.AnalyzeText("We will not store your real phone number, name and contacts.")
	if len(res.NotRetain) == 0 {
		t.Fatalf("NotRetain empty; statements: %+v", res.Statements)
	}
	joined := strings.Join(res.NotRetain, "|")
	for _, want := range []string{"phone number", "name", "contacts"} {
		if !strings.Contains(joined, want) {
			t.Errorf("NotRetain missing %q: %v", want, res.NotRetain)
		}
	}
	if len(res.Retain) != 0 {
		t.Errorf("negative sentence leaked into positive set: %v", res.Retain)
	}
}

func TestAnalyzeConjoinedVerbs(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We collect, use and share your personal information.")
	for _, set := range [][]string{res.Collect, res.Use, res.Disclose} {
		if len(set) != 1 || set[0] != "personal information" {
			t.Fatalf("sets = collect:%v use:%v disclose:%v", res.Collect, res.Use, res.Disclose)
		}
	}
}

func TestAnalyzeMultipleSentences(t *testing.T) {
	a := NewAnalyzer()
	text := `We may collect your location when you use our services.
We will share your device ID with advertising partners.
Your email address will be stored on our servers.
We do not sell your personal information.`
	res := a.AnalyzeText(text)
	if len(res.Sentences) != 4 {
		t.Fatalf("sentences = %d, want 4", len(res.Sentences))
	}
	if len(res.Collect) == 0 || !strings.Contains(res.Collect[0], "location") {
		t.Errorf("Collect = %v", res.Collect)
	}
	if len(res.Disclose) == 0 {
		t.Errorf("Disclose = %v", res.Disclose)
	}
	if len(res.Retain) == 0 || !strings.Contains(res.Retain[0], "email address") {
		t.Errorf("Retain = %v", res.Retain)
	}
	if len(res.NotDisclose) == 0 || !strings.Contains(res.NotDisclose[0], "personal information") {
		t.Errorf("NotDisclose = %v", res.NotDisclose)
	}
}

func TestAnalyzeEnumerationList(t *testing.T) {
	// The paper's Step-1 example: an enumeration split across lines must
	// be re-joined so the resources stay with the verb.
	a := NewAnalyzer()
	text := "We will collect the following information: your name;\nyour IP address;\nyour device ID.\n"
	res := a.AnalyzeText(text)
	if len(res.Sentences) != 1 {
		t.Fatalf("enumeration not merged: %d sentences %v", len(res.Sentences), res.Sentences)
	}
	if len(res.Collect) == 0 {
		t.Fatalf("Collect empty after enumeration merge; statements: %+v", res.Statements)
	}
}

func TestDisclaimerDetection(t *testing.T) {
	a := NewAnalyzer()
	// com.shortbreakstudios.HammerTime's sentence from §IV-C.
	res := a.AnalyzeText("We encourage you to review the privacy practices of these third parties before disclosing any personally identifiable information, as we are not responsible for the privacy practices of those sites.")
	if !res.Disclaimer {
		t.Fatal("disclaimer not detected")
	}
}

func TestConstraintWebsiteExclusion(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We will collect your email address if you register an account on our website.")
	if len(res.Collect) != 0 {
		t.Fatalf("website-registration sentence not excluded: %v", res.Collect)
	}
}

func TestConstraintKept(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We will share your information with partners if you give us consent.")
	if len(res.Disclose) == 0 {
		t.Fatalf("consent-constrained sentence wrongly dropped")
	}
	found := false
	for _, st := range res.Statements {
		if len(st.Constraints) > 0 && st.Constraints[0].Kind == 0 /* PreCondition */ {
			found = true
		}
	}
	if !found {
		t.Fatalf("constraint not extracted: %+v", res.Statements)
	}
}

func TestStatementElements(t *testing.T) {
	a := NewAnalyzer()
	res := a.AnalyzeText("We will provide your information to third party companies to improve service.")
	if len(res.Statements) == 0 {
		t.Fatal("no statements")
	}
	st := res.Statements[0]
	if st.Category != verbs.Disclose {
		t.Errorf("category = %v", st.Category)
	}
	if st.Executor != "we" {
		t.Errorf("executor = %q", st.Executor)
	}
	if st.MainVerb != "provide" {
		t.Errorf("main verb = %q", st.MainVerb)
	}
	if len(st.Targets) == 0 || !strings.Contains(st.Targets[0], "companies") {
		t.Errorf("targets = %v", st.Targets)
	}
}

func TestAnalyzeHTML(t *testing.T) {
	a := NewAnalyzer()
	html := `<html><head><title>Privacy</title><style>p{}</style></head>
<body><h1>Privacy Policy</h1>
<p>We may collect and process your location.</p>
<script>var x = 1;</script>
<p>We will not share your contacts with third parties.</p>
</body></html>`
	res := a.AnalyzeHTML(html)
	if len(res.Collect) == 0 {
		t.Fatalf("Collect = %v (sentences %v)", res.Collect, res.Sentences)
	}
	if len(res.NotDisclose) == 0 {
		t.Fatalf("NotDisclose = %v", res.NotDisclose)
	}
	for _, s := range res.Sentences {
		if strings.Contains(s, "var x") {
			t.Fatalf("script leaked into sentences: %q", s)
		}
	}
}

func TestPaperFalsePositiveColonExtraction(t *testing.T) {
	// §V-C documents this FP mode: for "in addition to your device
	// identifiers, we may also collect: the name you have associated
	// with your device", only "name" is extracted — "device identifier"
	// is missed because it is not the object of "collect". Assert the
	// reproduction of that behaviour.
	a := NewAnalyzer()
	res := a.AnalyzeText("In addition to your device identifiers, we may also collect: the name you have associated with your device.")
	joined := strings.Join(res.Collect, "|")
	if strings.Contains(joined, "device identifier") {
		t.Fatalf("expected the paper's extraction miss, got %v", res.Collect)
	}
}
