// Package policy implements the privacy-policy analysis module of the
// paper (§III-B): the six-step pipeline — sentence extraction, syntactic
// analysis, pattern generation, sentence selection, negation analysis,
// and information-element extraction — that turns a policy document into
// the Collect/Use/Retain/Disclose and NotCollect/NotUse/NotRetain/
// NotDisclose resource sets.
package policy

import (
	"strings"
	"sync"

	"ppchecker/internal/actrie"
	"ppchecker/internal/htmltext"
	"ppchecker/internal/negation"
	"ppchecker/internal/nlp"
	"ppchecker/internal/patterns"
	"ppchecker/internal/verbs"
)

// Statement is one useful sentence with its extracted information
// elements (§III-B Step 6: main verb, action executor, resource,
// constraint).
type Statement struct {
	// Index is the sentence position within the policy.
	Index int
	// Sentence is the lowercased sentence text.
	Sentence string
	// Category of the statement's governing verb.
	Category verbs.Category
	// Negative reports whether the sentence is negated (Step 5).
	Negative bool
	// Conditional reports that a consent-style constraint limits the
	// statement ("without your consent", "unless you agree"). Only set
	// when constraint analysis — the paper's §VI extension — is
	// enabled.
	Conditional bool
	// MainVerb is the root word of the sentence.
	MainVerb string
	// Executor is the action executor (subject phrase), e.g. "we".
	Executor string
	// Resources are the private-information phrases the verb governs.
	Resources []string
	// Targets are disclosure recipients ("to third party companies").
	Targets []string
	// Constraints are pre/post-condition clauses attached to the
	// sentence.
	Constraints []ConstraintInfo
}

// ConstraintInfo is an extracted constraint clause.
type ConstraintInfo struct {
	Kind nlp.ConstraintKind
	Text string
}

// Analysis is the result of analyzing one policy document.
type Analysis struct {
	// Sentences are all extracted sentences (lowercased).
	Sentences []string
	// Statements are the useful sentences with elements extracted.
	Statements []Statement
	// Disclaimer reports whether the policy disclaims responsibility
	// for third parties (§IV-C).
	Disclaimer bool

	// Resource sets per category: what the policy says the app will do.
	Collect, Use, Retain, Disclose []string
	// Negated resource sets: what the policy says the app will NOT do.
	NotCollect, NotUse, NotRetain, NotDisclose []string
}

// All returns the union of the positive resource sets — PPInfos in
// Algorithms 1 and 2 of the paper.
func (a *Analysis) All() []string {
	return dedupe(concat(a.Collect, a.Use, a.Retain, a.Disclose))
}

// NotSets returns the negated set for each category.
func (a *Analysis) NotSet(c verbs.Category) []string {
	switch c {
	case verbs.Collect:
		return a.NotCollect
	case verbs.Use:
		return a.NotUse
	case verbs.Retain:
		return a.NotRetain
	case verbs.Disclose:
		return a.NotDisclose
	}
	return nil
}

// PositiveSet returns the positive set for a category.
func (a *Analysis) PositiveSet(c verbs.Category) []string {
	switch c {
	case verbs.Collect:
		return a.Collect
	case verbs.Use:
		return a.Use
	case verbs.Retain:
		return a.Retain
	case verbs.Disclose:
		return a.Disclose
	}
	return nil
}

// Analyzer runs the pipeline. The zero value is not usable; construct
// with NewAnalyzer.
type Analyzer struct {
	matcher     *patterns.Matcher
	constraints bool
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithMatcher substitutes a mined pattern matcher for the default one
// (used by the Fig. 12 experiment to sweep the pattern count).
func WithMatcher(m *patterns.Matcher) Option {
	return func(a *Analyzer) { a.matcher = m }
}

// WithConstraintAnalysis enables the §VI extension: consent-style
// exceptions adjust a sentence's meaning. A negative sentence carrying
// "without your consent" / "unless you agree" is really a conditional
// permission — it no longer lands in the Not* sets (where it caused
// spurious incorrect/inconsistency matches) but in the positive sets,
// marked Conditional.
func WithConstraintAnalysis(on bool) Option {
	return func(a *Analyzer) { a.constraints = on }
}

// NewAnalyzer returns an analyzer with the default pattern set.
func NewAnalyzer(opts ...Option) *Analyzer {
	a := &Analyzer{matcher: patterns.DefaultMatcher()}
	for _, o := range opts {
		o(a)
	}
	return a
}

// AnalyzeHTML extracts text from an HTML policy and analyzes it.
func (a *Analyzer) AnalyzeHTML(html string) *Analysis {
	return a.AnalyzeText(htmltext.Extract(html))
}

// AnalyzeText analyzes plain policy text.
func (a *Analyzer) AnalyzeText(text string) *Analysis {
	res := &Analysis{Sentences: nlp.SplitSentences(text)}
	// One pooled parse buffer serves every sentence: nothing a
	// statement retains aliases the parse (resources, targets and
	// constraints are extracted as fresh strings).
	pb := nlp.GetParseBuffer()
	defer pb.Release()
	for i, sent := range res.Sentences {
		if isDisclaimer(sent) {
			res.Disclaimer = true
		}
		// A sentence that cannot realize any pattern yields no
		// statements (analyzeSentence would return nil on the empty
		// match set), so the dependency parse is skipped outright.
		if !a.matcher.CouldMatch(sent) {
			continue
		}
		parse := pb.Parse(sent)
		sts := a.analyzeSentence(i, sent, parse)
		for _, st := range sts {
			res.Statements = append(res.Statements, st)
			res.record(st)
		}
	}
	res.normalize()
	return res
}

// analyzeSentence applies Steps 4–6 to one parsed sentence. A sentence
// may yield several statements when verbs are conjoined ("we collect,
// use and share X").
func (a *Analyzer) analyzeSentence(idx int, sent string, parse *nlp.Parse) []Statement {
	ms := a.matcher.MatchParse(parse)
	if len(ms) == 0 {
		return nil
	}
	neg := negation.IsNegative(parse)
	conditional := false
	if a.constraints && neg && hasConsentException(sent) {
		// "we will not share X without your consent" is a conditional
		// permission, not a denial.
		neg = false
		conditional = true
	}
	var constraints []ConstraintInfo
	for _, c := range parse.Constraints {
		constraints = append(constraints, ConstraintInfo{
			Kind: c.Kind,
			Text: nlp.JoinTokens(parse.Tokens[c.Start:c.End]),
		})
	}
	if constraintExcludes(constraints) {
		// §III-B Step 6: behaviours performed by a website rather than
		// the app (registration/visit clauses) are ignored.
		return nil
	}
	executor := ""
	if s := parse.Subject(parse.Root); s >= 0 {
		executor = parse.Tokens[s].Lower
	}
	mainVerb := ""
	if parse.Root >= 0 {
		mainVerb = parse.Tokens[parse.Root].Lower
	}
	var targets []string
	for _, prep := range []string{"to", "with"} {
		for _, t := range parse.PrepObjects(parse.Root, prep) {
			targets = append(targets, parse.PhraseOf(t))
		}
	}

	// Group matched resources by category.
	byCat := map[verbs.Category][]string{}
	for _, m := range ms {
		if m.Category == verbs.None {
			continue
		}
		phrase := parse.PhraseOf(m.Resource)
		if phrase == "" {
			continue
		}
		byCat[m.Category] = append(byCat[m.Category], phrase)
		// Conjoined verbs share the resource: "we collect, use and
		// share X" puts X in all three categories.
		for _, cv := range parse.ConjVerbs(m.Verb) {
			if c2 := verbs.CategoryOf(parse.Tokens[cv].Lower); c2 != verbs.None {
				byCat[c2] = append(byCat[c2], phrase)
			}
		}
	}
	var out []Statement
	for _, cat := range verbs.Categories() {
		rs := byCat[cat]
		if len(rs) == 0 {
			continue
		}
		out = append(out, Statement{
			Index:       idx,
			Sentence:    sent,
			Category:    cat,
			Negative:    neg,
			Conditional: conditional,
			MainVerb:    mainVerb,
			Executor:    executor,
			Resources:   dedupe(rs),
			Targets:     targets,
			Constraints: constraints,
		})
	}
	// A matched sentence whose category is unknown (mined junk pattern)
	// still counts as useful but contributes no resources.
	if len(out) == 0 {
		out = append(out, Statement{
			Index: idx, Sentence: sent, Category: verbs.None,
			Negative: neg, MainVerb: mainVerb, Executor: executor,
			Constraints: constraints,
		})
	}
	return out
}

// record accumulates a statement's resources into the analysis sets.
func (res *Analysis) record(st Statement) {
	if st.Category == verbs.None {
		return
	}
	var set *[]string
	if st.Negative {
		switch st.Category {
		case verbs.Collect:
			set = &res.NotCollect
		case verbs.Use:
			set = &res.NotUse
		case verbs.Retain:
			set = &res.NotRetain
		case verbs.Disclose:
			set = &res.NotDisclose
		}
	} else {
		switch st.Category {
		case verbs.Collect:
			set = &res.Collect
		case verbs.Use:
			set = &res.Use
		case verbs.Retain:
			set = &res.Retain
		case verbs.Disclose:
			set = &res.Disclose
		}
	}
	*set = append(*set, st.Resources...)
}

func (res *Analysis) normalize() {
	res.Collect = dedupe(res.Collect)
	res.Use = dedupe(res.Use)
	res.Retain = dedupe(res.Retain)
	res.Disclose = dedupe(res.Disclose)
	res.NotCollect = dedupe(res.NotCollect)
	res.NotUse = dedupe(res.NotUse)
	res.NotRetain = dedupe(res.NotRetain)
	res.NotDisclose = dedupe(res.NotDisclose)
}

// consentExceptions are the §VI constraint phrases that turn a denial
// into a conditional permission.
var consentExceptions = []string{
	"without your consent", "without your permission",
	"without your prior consent", "without your explicit consent",
	"unless you consent", "unless you agree", "unless you allow",
	"unless you give us consent", "without your approval",
	"except with your consent",
}

// Phrase scans run on one precompiled Aho-Corasick automaton per list
// instead of a strings.Contains loop. Sentences arrive lowercased
// (Statement.Sentence is documented lowercase), so raw byte matching
// is exactly equivalent; the *Ref loop forms below are retained as the
// references the differential tests compare against.
var (
	phraseACOnce     sync.Once
	consentAC        *actrie.Automaton
	disclaimerMarkAC *actrie.Automaton
	disclaimerCtxAC  *actrie.Automaton
)

func phraseAutomatons() {
	phraseACOnce.Do(func() {
		b := actrie.NewBuilder(false)
		b.AddAll(consentExceptions, 1)
		consentAC = b.Build()
		b = actrie.NewBuilder(false)
		b.AddAll([]string{"not responsible", "no responsibility"}, 1)
		disclaimerMarkAC = b.Build()
		b = actrie.NewBuilder(false)
		b.AddAll([]string{"third", "those sites", "other sites", "these parties"}, 1)
		disclaimerCtxAC = b.Build()
	})
}

// hasConsentException reports whether the sentence carries a consent
// exception.
func hasConsentException(sent string) bool {
	phraseAutomatons()
	return consentAC.ContainsAny(sent)
}

// hasConsentExceptionRef is the retained loop reference for
// hasConsentException.
func hasConsentExceptionRef(sent string) bool {
	for _, phrase := range consentExceptions {
		if strings.Contains(sent, phrase) {
			return true
		}
	}
	return false
}

// constraintExcludes implements the two §III-B Step 6 exclusions:
// account registration through a website, and website-visit logging —
// behaviours not performed by the app.
func constraintExcludes(cs []ConstraintInfo) bool {
	for _, c := range cs {
		t := c.Text
		if strings.Contains(t, "website") || strings.Contains(t, "site") {
			if strings.Contains(t, "register") || strings.Contains(t, "visit") ||
				strings.Contains(t, "sign up") {
				return true
			}
		}
	}
	return false
}

// isDisclaimer recognises third-party responsibility disclaimers, e.g.
// "we are not responsible for the privacy practices of those sites".
// The context automaton omits "third-party"/"third parties": both are
// superstrings of "third", so the disjunction is unchanged.
func isDisclaimer(sent string) bool {
	phraseAutomatons()
	return disclaimerMarkAC.ContainsAny(sent) && disclaimerCtxAC.ContainsAny(sent)
}

// isDisclaimerRef is the retained loop reference for isDisclaimer.
func isDisclaimerRef(sent string) bool {
	if !strings.Contains(sent, "not responsible") && !strings.Contains(sent, "no responsibility") {
		return false
	}
	return strings.Contains(sent, "third") || strings.Contains(sent, "those sites") ||
		strings.Contains(sent, "other sites") || strings.Contains(sent, "these parties") ||
		strings.Contains(sent, "third-party") || strings.Contains(sent, "third parties")
}

func concat(ss ...[]string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0:0]
	for _, s := range ss {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
