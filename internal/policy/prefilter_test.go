package policy

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ppchecker/internal/nlp"
	"ppchecker/internal/patterns"
	"ppchecker/internal/verbs"
)

// harvestSentences builds a corpus covering every sentence shape the
// synthetic policy generator emits (P1–P5, negations, the §V false
// positive modes, disclaimers, boilerplate) plus tokenization edge
// cases, across every category verb and several inflections.
func harvestSentences(t *testing.T) []string {
	t.Helper()
	var raw []string
	add := func(s string) { raw = append(raw, s) }
	resources := []string{"location", "contact list", "device identifiers",
		"email address", "phone number", "precise location information"}
	past := func(v string) string {
		if strings.HasSuffix(v, "e") {
			return v + "d"
		}
		return v + "ed"
	}
	for i, v := range verbs.Lemmas() {
		res := resources[i%len(resources)]
		add(fmt.Sprintf("We may %s your %s.", v, res))
		add(fmt.Sprintf("Your %s may be %s by us.", res, past(v)))
		add(fmt.Sprintf("We are allowed to %s your %s.", v, res))
		add(fmt.Sprintf("We are able to %s your %s.", v, res))
		add(fmt.Sprintf("We use analytics to %s your %s.", v, res))
		add(fmt.Sprintf("We will not %s your %s.", v, res))
		add(fmt.Sprintf("We do not %s your %s.", v, res))
	}
	add("We will not display any of your personal information.")
	add("In addition to your device identifiers, we may also collect: the name you have associated with your device.")
	add("We also do not process the contents of your user account for serving targeted advertisements.")
	add("We may need to provide access to your personal information and the contents of your user account to our employees.")
	add("We encourage you to review the privacy practices of these third parties before disclosing any personally identifiable information, as we are not responsible for the privacy practices of those sites.")
	add("Please read this privacy policy carefully.")
	add("We take your privacy very seriously.")
	add("This policy explains our privacy practices in plain language.")
	add("We may update this policy from time to time.")
	add("By installing the application you agree to this policy.")
	add("We will not share your data without your consent.")
	add("Unless you agree, we never transmit your user's contact data.")
	add("Don't worry - we do not re-use or misuse third-party analytics.")
	add("Usage statistics and user profiles are stored securely.")
	add("Our partners' tracking: we track, log and upload usage.")
	add("")
	var out []string
	for _, s := range raw {
		out = append(out, nlp.SplitSentences(s)...)
	}
	return out
}

// TestPrefilterSound: on every corpus sentence and both stock
// matchers, a non-empty MatchParse implies CouldMatch — the prefilter
// may only skip sentences that cannot yield statements.
func TestPrefilterSound(t *testing.T) {
	sents := harvestSentences(t)
	matched := 0
	for _, m := range []*patterns.Matcher{patterns.DefaultMatcher(), patterns.ExtendedMatcher()} {
		for _, sent := range sents {
			ms := m.MatchParse(nlp.ParseSentence(sent))
			if len(ms) > 0 {
				matched++
				if !m.CouldMatch(sent) {
					t.Errorf("prefilter skips matching sentence %q", sent)
				}
			}
		}
	}
	if matched == 0 {
		t.Fatal("corpus produced no matches; test is vacuous")
	}
}

// TestPrefilterAnalysisEquivalent: AnalyzeText with the prefilter
// equals a reference pass that parses every sentence unconditionally.
func TestPrefilterAnalysisEquivalent(t *testing.T) {
	text := strings.Join(harvestSentences(t), " ")
	for _, constraints := range []bool{false, true} {
		a := NewAnalyzer(WithConstraintAnalysis(constraints))
		got := a.AnalyzeText(text)

		want := &Analysis{Sentences: nlp.SplitSentences(text)}
		for i, sent := range want.Sentences {
			if isDisclaimerRef(sent) {
				want.Disclaimer = true
			}
			for _, st := range a.analyzeSentence(i, sent, nlp.ParseSentence(sent)) {
				want.Statements = append(want.Statements, st)
				want.record(st)
			}
		}
		want.normalize()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("constraints=%v: prefiltered analysis diverges\ngot  %+v\nwant %+v",
				constraints, got, want)
		}
	}
}

// TestPhraseScansMatchReferences: the automaton-backed phrase scans
// agree with the retained loop references on every corpus sentence
// plus targeted edge cases.
func TestPhraseScansMatchReferences(t *testing.T) {
	sents := append(harvestSentences(t),
		"we are not responsible for third parties.",
		"we accept no responsibility for those sites.",
		"not responsible. third elsewhere.",
		"we are not responsible for anything.",
		"without your consent we act.",
		"unless you agree to everything",
		"without your prior explicit consent",
		"", "third not responsible",
	)
	for _, sent := range sents {
		if got, want := isDisclaimer(sent), isDisclaimerRef(sent); got != want {
			t.Errorf("isDisclaimer(%q) = %v, ref %v", sent, got, want)
		}
		if got, want := hasConsentException(sent), hasConsentExceptionRef(sent); got != want {
			t.Errorf("hasConsentException(%q) = %v, ref %v", sent, got, want)
		}
	}
}
