package esa

// The optional remote tier behind the interpret memo. In the
// distributed topology the same recurring policy/resource phrases are
// interpreted by every worker process; a VecBacking lets a worker
// consult the coordinator-hosted shard set on a memo miss before
// paying the tokenize-and-accumulate build, and write its own builds
// through for the rest of the fleet.
//
// Correctness contract: a stored vector must decode bit-identical to
// the local build. buildVec computes each weight by accumulating in
// term/posting order and the norm by summing squares in concept order;
// the wire format therefore carries the exact weight slice and the
// decoder recomputes the norm in the same slice order, so a remote hit
// and a local build are indistinguishable. Anything suspect about a
// remote payload — unsorted or out-of-range concepts, non-finite
// weights, malformed JSON — decodes as a miss, never a poisoned
// vector.

import (
	"encoding/json"
	"math"
)

// VecBacking is the remote read-through tier behind an Index's
// interpret memo — structurally identical to core.CacheBacking (core
// imports esa, so the contract is restated here rather than imported).
// Load returns the serialized vector for a text, or false on miss OR
// error; Store is best-effort write-through. Both must be safe for
// concurrent use. A backing must only be shared between processes
// running the same KB build.
type VecBacking interface {
	Load(key string) ([]byte, bool)
	Store(key string, data []byte)
}

// vecBackingBox wraps the interface so atomic.Pointer can represent
// "backing cleared" (nil box field) distinctly from "never set".
type vecBackingBox struct{ b VecBacking }

// SetVecBacking installs (or, with nil, clears) the remote tier behind
// this index's interpret memo. Safe to call concurrently with lookups:
// in-flight operations use whichever backing they loaded, and a
// cleared or swapped backing degrades to local compute.
func (x *Index) SetVecBacking(b VecBacking) {
	x.backing.Store(&vecBackingBox{b: b})
}

func (x *Index) vecBacking() VecBacking {
	if box := x.backing.Load(); box != nil {
		return box.b
	}
	return nil
}

// wireVec is the JSON artifact format: the sparse vector's parallel
// slices, nothing else. The norm is intentionally absent — the decoder
// recomputes it in slice order, exactly as buildVec does, so it cannot
// drift from the weights it describes.
type wireVec struct {
	Concepts []int32   `json:"c"`
	Weights  []float64 `json:"w"`
}

// encodeVec serializes a vector for the remote tier.
func encodeVec(v *ConceptVec) ([]byte, error) {
	return json.Marshal(wireVec{Concepts: v.concepts, Weights: v.weights})
}

// decodeVec deserializes and validates a remote vector against this
// index's concept space. Any violation returns nil (a miss).
func (x *Index) decodeVec(data []byte) *ConceptVec {
	var wv wireVec
	if err := json.Unmarshal(data, &wv); err != nil {
		return nil
	}
	if len(wv.Concepts) != len(wv.Weights) {
		return nil
	}
	n := int32(len(x.concepts))
	var ss float64
	for i, c := range wv.Concepts {
		if c < 0 || c >= n {
			return nil
		}
		if i > 0 && wv.Concepts[i-1] >= c {
			return nil // must be strictly ascending, like buildVec's gather
		}
		w := wv.Weights[i]
		if w == 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil
		}
		ss += w * w
	}
	return &ConceptVec{concepts: wv.Concepts, weights: wv.Weights, norm: math.Sqrt(ss)}
}

// loadRemoteVec consults the backing for a memoizable text. Corrupt
// payloads count as remote failures and read as misses.
func (x *Index) loadRemoteVec(text string, sc *StatScope) (*ConceptVec, bool) {
	b := x.vecBacking()
	if b == nil {
		return nil, false
	}
	data, ok := b.Load(text)
	if !ok {
		return nil, false
	}
	v := x.decodeVec(data)
	if v == nil {
		x.count(sc, func(c *cacheCells) { c.remoteFails.Add(1) })
		return nil, false
	}
	x.count(sc, func(c *cacheCells) { c.remoteHits.Add(1) })
	return v, true
}

// storeRemoteVec writes a locally built vector through, best effort.
func (x *Index) storeRemoteVec(text string, v *ConceptVec, sc *StatScope) {
	b := x.vecBacking()
	if b == nil {
		return
	}
	data, err := encodeVec(v)
	if err != nil {
		x.count(sc, func(c *cacheCells) { c.remoteFails.Add(1) })
		return
	}
	b.Store(text, data)
}

// missVec resolves an interpret-memo miss: the remote tier first (only
// for memoizable texts — the tier exists for the same short recurring
// phrases the memo does), then a local build with write-through. The
// returned terms are non-nil only when the text was tokenized locally,
// so ClassifyWithSupport can reuse them.
func (x *Index) missVec(text string, sc *StatScope) (*ConceptVec, []string) {
	memoize := len(text) <= memoMaxKeyLen
	if memoize {
		if v, ok := x.loadRemoteVec(text, sc); ok {
			if x.memo.put(text, v) {
				x.count(sc, func(c *cacheCells) { c.evictions.Add(1) })
			}
			return v, nil
		}
	}
	terms := Terms(text)
	v := x.buildVec(terms, sc)
	if memoize {
		if x.memo.put(text, v) {
			x.count(sc, func(c *cacheCells) { c.evictions.Add(1) })
		}
		x.storeRemoteVec(text, v, sc)
	}
	return v, terms
}
