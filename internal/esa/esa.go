// Package esa implements Explicit Semantic Analysis (Gabrilovich &
// Markovitch) over a built-in privacy-concept knowledge base. Given two
// texts, each is mapped to a weighted vector of concepts via a TF-IDF
// inverted index, and their semantic relatedness is the cosine of the
// two vectors. PPChecker uses it to decide whether two resource phrases
// refer to the same private information (threshold 0.67, following
// AutoCog as the paper does).
package esa

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultThreshold is the similarity threshold the paper adopts.
const DefaultThreshold = 0.67

// Index is an ESA model: an inverted index from terms to concept
// weights. The index itself is immutable after construction and safe
// for concurrent use; the attached interpret memo and scratch pool are
// concurrency-safe caches over that immutable state.
type Index struct {
	concepts []string
	// postings maps a term to its TF-IDF weight in each concept.
	postings map[string][]posting

	// memo caches InterpretVec results (sharded, bounded); scratch
	// pools the dense accumulation buffers; cells counts both.
	memo    interpretMemo
	scratch sync.Pool
	cells   cacheCells

	// backing is the optional remote interpret tier (see SetVecBacking
	// in backing.go); zero value means none.
	backing atomic.Pointer[vecBackingBox]
}

type posting struct {
	concept int
	weight  float64
}

// Vector is a sparse concept vector, mapping concept index to weight.
type Vector map[int]float64

// New builds an ESA index from a knowledge base. An empty KB yields an
// index on which every similarity is zero.
func New(kb []Article) *Index {
	idx := &Index{postings: make(map[string][]posting)}
	df := map[string]int{}
	termFreqs := make([]map[string]float64, len(kb))
	for i, a := range kb {
		idx.concepts = append(idx.concepts, a.Title)
		tf := map[string]float64{}
		terms := Terms(a.Title + " " + a.Text)
		for _, t := range terms {
			tf[t]++
		}
		// Title terms are strong evidence for the concept.
		for _, t := range Terms(a.Title) {
			tf[t] += 3
		}
		termFreqs[i] = tf
		for t := range tf {
			df[t]++
		}
	}
	n := float64(len(kb))
	for i, tf := range termFreqs {
		var norm float64
		weights := map[string]float64{}
		for t, f := range tf {
			w := (1 + math.Log(f)) * math.Log(1+n/float64(df[t]))
			weights[t] = w
			norm += w * w
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for t, w := range weights {
			idx.postings[t] = append(idx.postings[t], posting{concept: i, weight: w / norm})
		}
	}
	// Deterministic postings order.
	for t := range idx.postings {
		ps := idx.postings[t]
		sort.Slice(ps, func(a, b int) bool { return ps[a].concept < ps[b].concept })
	}
	return idx
}

// Default returns an index over the built-in privacy knowledge base.
// The index is built once and shared.
func Default() *Index { return defaultIndex }

var defaultIndex = New(BuiltinKB())

// Concepts returns the concept titles of the index, in order.
func (x *Index) Concepts() []string { return append([]string(nil), x.concepts...) }

// Interpret maps a text to its concept vector. It is the reference
// implementation the vectorized path (InterpretVec/CosineVec) is
// verified against; hot-path callers should prefer InterpretVec, which
// memoizes.
func (x *Index) Interpret(text string) Vector {
	v := Vector{}
	for _, t := range Terms(text) {
		for _, p := range x.postings[t] {
			v[p.concept] += p.weight
		}
	}
	return v
}

// top returns the index of the highest-weighted concept of v, or -1
// for an empty vector. Entries are sorted ascending, so a strict >
// keeps the lowest concept on ties, matching the reference tie-break.
func top(v *ConceptVec) int {
	best, bw := -1, 0.0
	for i, w := range v.weights {
		if w > bw {
			best, bw = i, w
		}
	}
	return best
}

// TopConcept returns the highest-weighted concept title for a text and
// its weight, or ("", 0) when the text maps to nothing.
func (x *Index) TopConcept(text string) (string, float64) {
	v := x.InterpretVec(text)
	best := top(v)
	if best < 0 {
		return "", 0
	}
	return x.concepts[v.concepts[best]], v.weights[best]
}

// Classify returns the concept whose axis is closest to the text's
// concept vector, with the cosine of the vector against that axis
// (v[c]/‖v‖). Unlike TopConcept's raw weight, the result is
// length-normalized, so it is comparable against a threshold.
func (x *Index) Classify(text string) (string, float64) {
	v := x.InterpretVec(text)
	best := top(v)
	if best < 0 || v.norm == 0 {
		return "", 0
	}
	return x.concepts[v.concepts[best]], v.weights[best] / v.norm
}

// ClassifyWithSupport is Classify plus the number of distinct terms of
// the text that support the winning concept. Callers that must resist
// single-word coincidences (a generic word appearing in only one
// concept yields cosine 1.0) can demand support ≥ 2. The text is
// tokenized at most once — not at all when both the vector and its
// support count are already cached — and the winning concept index is
// taken straight from the vector rather than re-derived from scratch.
func (x *Index) ClassifyWithSupport(text string) (string, float64, int) {
	return x.ClassifyWithSupportScoped(text, nil)
}

// ClassifyWithSupportScoped is ClassifyWithSupport with per-run stat
// attribution (see StatScope). A nil scope makes it identical to
// ClassifyWithSupport.
func (x *Index) ClassifyWithSupportScoped(text string, sc *StatScope) (string, float64, int) {
	var terms []string
	v, ok := x.memo.get(text)
	if ok {
		x.count(sc, func(c *cacheCells) { c.hits.Add(1) })
	} else {
		x.count(sc, func(c *cacheCells) { c.misses.Add(1) })
		v, terms = x.missVec(text, sc)
	}
	best := top(v)
	if best < 0 || v.norm == 0 {
		return "", 0, 0
	}
	concept := v.concepts[best]
	if s := v.topSupport.Load(); s > 0 {
		return x.concepts[concept], v.weights[best] / v.norm, int(s - 1)
	}
	if terms == nil {
		terms = Terms(text)
	}
	support := 0
	seen := map[string]bool{}
	for _, term := range terms {
		if seen[term] {
			continue
		}
		seen[term] = true
		for _, p := range x.postings[term] {
			if int32(p.concept) == concept {
				support++
				break
			}
		}
	}
	v.topSupport.Store(int32(support) + 1)
	return x.concepts[concept], v.weights[best] / v.norm, support
}

// Similarity returns the cosine similarity of the concept vectors of
// two texts, in [0, 1]. Both interpretations go through the memo, so
// recurring phrases tokenize once per process.
func (x *Index) Similarity(a, b string) float64 {
	return CosineVec(x.InterpretVec(a), x.InterpretVec(b))
}

// Same reports whether two texts refer to the same thing under the
// default threshold.
func (x *Index) Same(a, b string) bool {
	return x.Similarity(a, b) >= DefaultThreshold
}

// Cosine computes the cosine similarity of two sparse map vectors. It
// is the reference implementation for CosineVec and is retained for
// the differential tests; hot paths use CosineVec over slice vectors.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot, na, nb float64
	for c, w := range a {
		na += w * w
		if w2, ok := b[c]; ok {
			dot += w * w2
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if sim > 1 { // guard against float drift
		sim = 1
	}
	return sim
}

// stem conservatively reduces plural nouns to singular so "contacts"
// and "contact" share a term. It is applied to articles and queries
// alike, so aggressive correctness is unnecessary — only consistency.
func stem(t string) string {
	n := len(t)
	switch {
	case n <= 4: // short words ("news", "gps", "bus") are left alone
		return t
	case strings.HasSuffix(t, "ies") && n > 4:
		return t[:n-3] + "y"
	case strings.HasSuffix(t, "ses") || strings.HasSuffix(t, "xes") ||
		strings.HasSuffix(t, "zes") || strings.HasSuffix(t, "ches") ||
		strings.HasSuffix(t, "shes"):
		return t[:n-2]
	case strings.HasSuffix(t, "ss") || strings.HasSuffix(t, "us") ||
		strings.HasSuffix(t, "is"):
		return t
	case strings.HasSuffix(t, "s"):
		return t[:n-1]
	}
	return t
}

// stopTerms are ignored when projecting text onto concepts.
var stopTerms = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "to": true, "and": true,
	"or": true, "in": true, "on": true, "for": true, "with": true,
	"your": true, "our": true, "my": true, "their": true, "his": true,
	"her": true, "its": true, "we": true, "you": true, "they": true,
	"is": true, "are": true, "be": true, "will": true, "may": true,
	"that": true, "this": true, "other": true, "any": true, "all": true,
	"such": true, "about": true, "from": true, "by": true, "as": true,
}

// Terms tokenizes text into lowercase terms for the index, dropping
// stopwords and punctuation. Adjacent content words additionally emit a
// joined bigram term ("address book" → "address_book") so multiword
// expressions project onto the right concept instead of spreading over
// every concept containing one of their words.
func Terms(text string) []string {
	uni := unigrams(text)
	out := make([]string, 0, len(uni)*2)
	out = append(out, uni...)
	for i := 0; i+1 < len(uni); i++ {
		out = append(out, uni[i]+"_"+uni[i+1])
	}
	return out
}

// KnownTermCount counts the word occurrences in text whose stemmed
// form is a term of the index, stopping early once max is reached.
// Words are tokenized exactly as the unigram pass of Terms (the
// differential test enforces agreement). Callers use it as a cheap
// gate: a text with fewer than two known-term occurrences cannot
// yield any classification with support ≥ 2, because every supporting
// term — bigrams included — implies distinct known-unigram
// occurrences in the text.
func (x *Index) KnownTermCount(text string, max int) int {
	count := 0
	var buf []byte
	start, hasUpper := -1, false
	flush := func(end int) bool {
		if start < 0 {
			return false
		}
		w := text[start:end]
		if hasUpper {
			buf = buf[:0]
			for k := start; k < end; k++ {
				c := text[k]
				if c >= 'A' && c <= 'Z' {
					c += 32
				}
				buf = append(buf, c)
			}
			w = string(buf)
		}
		start, hasUpper = -1, false
		t := stem(w)
		if !stopTerms[t] && len(t) > 1 || t == "ip" || t == "id" || t == "os" {
			if _, known := x.postings[t]; known {
				count++
				return count >= max
			}
		}
		return false
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			if start < 0 {
				start = i
			}
		case c >= 'A' && c <= 'Z':
			if start < 0 {
				start = i
			}
			hasUpper = true
		default:
			if flush(i) {
				return count
			}
		}
	}
	flush(len(text))
	return count
}

func unigrams(text string) []string {
	out := make([]string, 0, len(text)/6+1)
	// Words are maximal runs of alphanumerics; each is sliced out of
	// text directly, lowercasing into a scratch buffer only when the run
	// actually contains uppercase letters.
	var buf []byte
	start, hasUpper := -1, false
	flush := func(end int) {
		if start < 0 {
			return
		}
		w := text[start:end]
		if hasUpper {
			buf = buf[:0]
			for k := start; k < end; k++ {
				c := text[k]
				if c >= 'A' && c <= 'Z' {
					c += 32
				}
				buf = append(buf, c)
			}
			w = string(buf)
		}
		start, hasUpper = -1, false
		t := stem(w)
		if !stopTerms[t] && len(t) > 1 || t == "ip" || t == "id" || t == "os" {
			out = append(out, t)
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			if start < 0 {
				start = i
			}
		case c >= 'A' && c <= 'Z':
			if start < 0 {
				start = i
			}
			hasUpper = true
		default:
			// '-' and '\'' included: separators, "e-mail" → "e", "mail"
			flush(i)
		}
	}
	flush(len(text))
	return out
}
