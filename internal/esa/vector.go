package esa

// The vectorized hot path. Similarity() is the inner predicate of all
// five detection algorithms, so the corpus runner calls it millions of
// times over a small recurring vocabulary of resource phrases. The
// slice-backed ConceptVec plus the interpret memo below turn the
// common call into two cache lookups and one merge-walk over sorted
// sparse vectors, instead of two tokenizations and three map builds.
//
// The map-backed Interpret/Cosine pair in esa.go is kept as the
// reference implementation; vector_test.go asserts the two paths agree
// to within 1e-12 on arbitrary KB phrases.

import (
	"math"
	"sync"
	"sync/atomic"
)

// ConceptVec is an immutable sparse concept vector in slice form:
// concept indices sorted ascending, weights parallel to them, and the
// Euclidean norm precomputed at construction. It is safe to share
// across goroutines.
type ConceptVec struct {
	concepts []int32
	weights  []float64
	norm     float64

	// topSupport lazily caches ClassifyWithSupport's distinct-term
	// support count for the top concept, stored as support+1 (0 =
	// unset). The value is deterministic for a given text, so the
	// idempotent atomic store keeps the vector shareable.
	topSupport atomic.Int32
}

// Len returns the number of nonzero concepts.
func (v *ConceptVec) Len() int { return len(v.concepts) }

// Norm returns the precomputed Euclidean norm.
func (v *ConceptVec) Norm() float64 { return v.norm }

// Map converts the vector back to the map representation, for callers
// (and tests) that interoperate with the reference path.
func (v *ConceptVec) Map() Vector {
	m := make(Vector, len(v.concepts))
	for i, c := range v.concepts {
		m[int(c)] = v.weights[i]
	}
	return m
}

// CosineVec computes the cosine similarity of two sparse slice vectors
// by a merge walk over their sorted concept lists. Norms are
// precomputed, so the call performs no per-vector scans beyond the
// walk itself.
func CosineVec(a, b *ConceptVec) float64 {
	if a == nil || b == nil || len(a.concepts) == 0 || len(b.concepts) == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.concepts) && j < len(b.concepts) {
		ca, cb := a.concepts[i], b.concepts[j]
		switch {
		case ca == cb:
			dot += a.weights[i] * b.weights[j]
			i++
			j++
		case ca < cb:
			i++
		default:
			j++
		}
	}
	if dot == 0 || a.norm == 0 || b.norm == 0 {
		return 0
	}
	sim := dot / (a.norm * b.norm)
	if sim > 1 { // guard against float drift, as in the reference path
		sim = 1
	}
	return sim
}

// CacheStats is a point-in-time snapshot of an index's interpret-memo
// and scratch-pool counters. Values are cumulative; Sub yields the
// delta over a run.
type CacheStats struct {
	// Hits and Misses count interpret-memo lookups.
	Hits, Misses int64
	// Evictions counts entries dropped to keep the memo bounded.
	Evictions int64
	// PoolGets counts scratch-buffer checkouts; PoolNews the subset
	// that allocated a fresh buffer.
	PoolGets, PoolNews int64
	// RemoteHits counts memo misses served by the remote tier (see
	// VecBacking); RemoteFails counts remote payloads rejected as
	// corrupt plus encode failures. Zero without a backing.
	RemoteHits, RemoteFails int64
}

// Sub returns the element-wise difference s - prev.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		Evictions:   s.Evictions - prev.Evictions,
		PoolGets:    s.PoolGets - prev.PoolGets,
		PoolNews:    s.PoolNews - prev.PoolNews,
		RemoteHits:  s.RemoteHits - prev.RemoteHits,
		RemoteFails: s.RemoteFails - prev.RemoteFails,
	}
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheCells is the atomic backing of CacheStats.
type cacheCells struct {
	hits, misses, evictions atomic.Int64
	poolGets, poolNews      atomic.Int64
	remoteHits, remoteFails atomic.Int64
}

func (c *cacheCells) snapshot() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		PoolGets:    c.poolGets.Load(),
		PoolNews:    c.poolNews.Load(),
		RemoteHits:  c.remoteHits.Load(),
		RemoteFails: c.remoteFails.Load(),
	}
}

// globalCells aggregates the counters of every index in the process,
// so the -metrics expositions can report one ESA line without
// enumerating indexes (the default KB index and the desc profile index
// both count here).
var globalCells cacheCells

// AggregateCacheStats returns the process-wide ESA cache counters,
// summed over all indexes. The counters are cumulative over the whole
// process: a before/after delta attributes a window of wall-clock
// time, not a run — two concurrent runs each see the other's activity
// in their window. Single-run processes (the CLIs) may use the delta;
// anything that can overlap with another run (the corpus runner under
// ppserve, concurrent evaluations) must attribute through a StatScope
// instead.
func AggregateCacheStats() CacheStats { return globalCells.snapshot() }

// StatScope is a per-run attribution handle for the ESA cache
// counters. Counting sites accept an optional scope and add each
// event to the index's own cells, the process-global cells, and the
// scope — so a scope accumulates exactly the events caused by the
// callers it was handed to, no matter how many other runs share the
// process-global memo concurrently. A nil *StatScope is valid and
// records nothing.
//
// The corpus runner opens one scope per run and threads it to every
// worker's checker; ppserve opens one for the server's lifetime.
type StatScope struct {
	cells cacheCells
}

// NewStatScope builds an empty attribution scope.
func NewStatScope() *StatScope { return &StatScope{} }

// Snapshot returns the events attributed to this scope so far.
// Nil-safe.
func (s *StatScope) Snapshot() CacheStats {
	if s == nil {
		return CacheStats{}
	}
	return s.cells.snapshot()
}

// count applies one counting action to the index's cells, the
// process-global cells, and (when non-nil) the per-run scope.
func (x *Index) count(sc *StatScope, f func(*cacheCells)) {
	f(&x.cells)
	f(&globalCells)
	if sc != nil {
		f(&sc.cells)
	}
}

// Interpret-memo sizing. 16 shards bound lock contention under the
// corpus worker pool; 2048 entries per shard cap the memo at 32Ki
// vectors (~a few MB), far above the recurring resource-phrase
// vocabulary of any real corpus. Texts longer than memoMaxKeyLen are
// interpreted but never memoized: the memo exists for short recurring
// phrases, not documents.
const (
	memoShards    = 16
	memoShardCap  = 2048
	memoMaxKeyLen = 1 << 12
)

// interpretMemo is the sharded, bounded, concurrency-safe text →
// vector cache. Eviction is random-replacement: at capacity, one
// arbitrary entry (Go's randomized map iteration order) is dropped per
// insert, which is O(1), needs no access bookkeeping on the hot read
// path, and is within a small factor of LRU on the skewed phrase
// distributions seen here.
type interpretMemo struct {
	shards [memoShards]memoShard
}

type memoShard struct {
	mu sync.RWMutex
	m  map[string]*ConceptVec
}

// shardFor hashes the key (FNV-1a) to a shard.
func (mm *interpretMemo) shardFor(key string) *memoShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &mm.shards[h%memoShards]
}

func (mm *interpretMemo) get(key string) (*ConceptVec, bool) {
	s := mm.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// put inserts a vector, reporting whether an entry was evicted to
// make room (the caller attributes the eviction to its counters).
func (mm *interpretMemo) put(key string, v *ConceptVec) bool {
	s := mm.shardFor(key)
	evicted := false
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*ConceptVec, memoShardCap)
	}
	if _, exists := s.m[key]; !exists && len(s.m) >= memoShardCap {
		for k := range s.m {
			delete(s.m, k)
			evicted = true
			break
		}
	}
	s.m[key] = v
	s.mu.Unlock()
	return evicted
}

// len returns the total number of memoized vectors (test hook).
func (mm *interpretMemo) len() int {
	n := 0
	for i := range mm.shards {
		s := &mm.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats returns this index's interpret-memo and pool counters.
func (x *Index) CacheStats() CacheStats { return x.cells.snapshot() }

// memoLen returns the number of memoized vectors (exported to tests
// via the esa package only).
func (x *Index) memoLen() int { return x.memo.len() }

// InterpretVec maps a text to its sparse slice vector, memoizing the
// result so the recurring phrases of a corpus tokenize once per
// process rather than once per call. The returned vector is shared and
// must not be mutated.
func (x *Index) InterpretVec(text string) *ConceptVec {
	return x.InterpretVecScoped(text, nil)
}

// InterpretVecScoped is InterpretVec with per-run stat attribution:
// the lookup's hit/miss (and any build-side pool or eviction events)
// are additionally counted on sc. A nil scope makes it identical to
// InterpretVec.
func (x *Index) InterpretVecScoped(text string, sc *StatScope) *ConceptVec {
	if len(text) <= memoMaxKeyLen {
		if v, ok := x.memo.get(text); ok {
			x.count(sc, func(c *cacheCells) { c.hits.Add(1) })
			return v
		}
	}
	x.count(sc, func(c *cacheCells) { c.misses.Add(1) })
	v, _ := x.missVec(text, sc)
	return v
}

// buildVec accumulates terms into a dense scratch buffer (the concept
// space is small) and gathers the nonzero entries into a sorted sparse
// vector. Additions happen in the same term/posting order as the
// reference Interpret, so the per-concept weights are bit-identical to
// the map path.
func (x *Index) buildVec(terms []string, sc *StatScope) *ConceptVec {
	x.count(sc, func(c *cacheCells) { c.poolGets.Add(1) })
	sp, _ := x.scratch.Get().(*[]float64)
	if sp == nil {
		x.count(sc, func(c *cacheCells) { c.poolNews.Add(1) })
		s := make([]float64, len(x.concepts))
		sp = &s
	}
	dense := *sp
	for _, t := range terms {
		for _, p := range x.postings[t] {
			dense[p.concept] += p.weight
		}
	}
	nnz := 0
	for _, w := range dense {
		if w != 0 {
			nnz++
		}
	}
	v := &ConceptVec{
		concepts: make([]int32, 0, nnz),
		weights:  make([]float64, 0, nnz),
	}
	var ss float64
	for c, w := range dense {
		if w == 0 {
			continue
		}
		v.concepts = append(v.concepts, int32(c))
		v.weights = append(v.weights, w)
		ss += w * w
		dense[c] = 0 // zero on the way out so the pooled buffer is clean
	}
	v.norm = math.Sqrt(ss)
	x.scratch.Put(sp)
	return v
}
