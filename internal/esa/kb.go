package esa

// The knowledge base plays the role Wikipedia plays in classic Explicit
// Semantic Analysis: a set of concept articles against which arbitrary
// text is projected. PPChecker only ever asks ESA one question — do two
// resource phrases refer to the same private information? — so the KB is
// a privacy-domain corpus: one article per information concept plus
// distractor articles so unrelated phrases score low.

// Article is one concept document.
type Article struct {
	Title string
	Text  string
}

// BuiltinKB returns the default privacy-domain knowledge base.
func BuiltinKB() []Article {
	return []Article{
		{"location", `location geolocation geographic position place gps latitude longitude coordinates precise location coarse location approximate location current location last known location whereabouts geo location location data location information cell tower wifi positioning region country city postal area movement route map nearby`},
		{"contact", `contact contacts address book phonebook contact list people entries contact information contact data friends acquaintances contact entries phone book stored contacts contact names contact numbers contact details`},
		{"phone number", `phone number telephone number mobile number cell number msisdn caller number phone digits number dialed real phone number calling number sim number line number`},
		{"device identifier", `device identifier device id unique device identifier imei udid hardware id android id serial number device serial handset identifier equipment identity device fingerprint identifier unique id advertising identifier`},
		{"ip address", `ip address internet protocol address network address ipv4 ipv6 host address ip connection address routing address internet address`},
		{"cookie", `cookie cookies web cookie browser cookie tracking cookie session cookie pixel tag beacon local storage identifier token stored by browser`},
		{"email address", `email address e-mail address electronic mail address mailbox email account mail address contact email inbox address correspondence address`},
		{"name", `name full name first name last name surname given name username user name real name display name nickname personal name identity name`},
		{"account", `account user account profile account information credentials login account data registered account account contents account details user profile sign in password authentication`},
		{"calendar", `calendar calendar entries events appointments schedule agenda meeting reminders calendar data calendar information dates planner`},
		{"camera", `camera photo photograph picture image snapshot lens video capture photos taken camera roll gallery shooting pictures camera data`},
		{"audio", `audio microphone voice sound recording speech record audio mic capture sound audio data voice data listening recordings`},
		{"sms", `sms text message short message messages mms message content message body text messages sent received messaging sms data inbox messages`},
		{"call log", `call log call history phone calls dialed calls received calls missed calls call records call duration calling history call data`},
		{"app list", `app list installed applications installed apps package list application inventory running apps software list installed packages applications on device app usage`},
		{"browsing history", `browsing history web history pages visited urls visited browser history navigation history sites viewed search history clicks visited links`},
		{"age", `age date of birth birthday birth date years old birth year demographic age age information`},
		{"gender", `gender sex male female demographic gender identity`},
		{"social graph", `social graph friend list connections followers social network relationships`},
		{"advertising id", `advertising id ad identifier advertising identifier marketing id ad tracking identifier idfa gaid personalized ads identifier`},
		{"wifi", `wifi wireless network ssid access point network name wifi state wifi connection hotspot wireless information`},
		{"bluetooth", `bluetooth paired devices bluetooth devices short range wireless bluetooth connection nearby devices`},
		{"personal information", `personal information personal data personally identifiable information pii private information user information individual data personal details information about you your information private data sensitive information user data information data`},
		{"technical information", `technical information device model operating system version platform os hardware model carrier network operator system language screen resolution build version technical data`},
		{"usage information", `usage information usage data analytics interaction statistics feature usage session length clicks taps events crash reports diagnostics performance logs`},
		// distractor concepts: text about services, legal language, and
		// generic app behaviour that should NOT match private resources.
		{"service", `service services functionality features offering product experience improve service provide service quality maintenance support operation`},
		{"advertisement", `advertisement ads advertising campaign banner interstitial sponsored promotion marketing commercial ad network ad serving`},
		{"legal", `law regulation compliance legal obligation court subpoena enforcement statute act requirement jurisdiction liability terms conditions agreement`},
		{"security", `security protection safeguard encryption secure transmission integrity confidentiality breach unauthorized access firewall measures`},
		{"payment", `payment billing purchase transaction credit card invoice price subscription checkout order refund`},
		{"company", `company business corporation partner affiliate subsidiary third party vendor provider organization entity firm`},
		{"website", `website site web page homepage portal link url domain visit browse internet site online`},
		{"weather", `weather forecast temperature rain snow wind climate conditions humidity`},
		{"game", `game play level score player match puzzle arcade gaming entertainment fun`},
		{"document", `document file report spreadsheet text page content attachment folder storage`},
	}
}
