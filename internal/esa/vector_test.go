package esa

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// kbVocabulary collects every distinct word of the built-in KB, the
// raw material for random phrase generation.
func kbVocabulary() []string {
	seen := map[string]bool{}
	var vocab []string
	for _, a := range BuiltinKB() {
		for _, w := range strings.Fields(a.Title + " " + a.Text) {
			if !seen[w] {
				seen[w] = true
				vocab = append(vocab, w)
			}
		}
	}
	return vocab
}

// randomPhrase draws 1–6 KB words (seeded rng, deterministic test).
func randomPhrase(rng *rand.Rand, vocab []string) string {
	n := 1 + rng.Intn(6)
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[rng.Intn(len(vocab))]
	}
	return strings.Join(words, " ")
}

// TestVecMatchesReference is the differential test of the tentpole:
// on random KB phrases the slice-vector path (InterpretVec/CosineVec/
// Similarity) agrees with the reference map path (Interpret/Cosine) to
// within 1e-12, and the per-concept weights are bit-identical.
func TestVecMatchesReference(t *testing.T) {
	x := New(BuiltinKB())
	vocab := kbVocabulary()
	rng := rand.New(rand.NewSource(42))
	const tol = 1e-12
	for i := 0; i < 2000; i++ {
		a := randomPhrase(rng, vocab)
		b := randomPhrase(rng, vocab)
		ref := Cosine(x.Interpret(a), x.Interpret(b))
		vec := CosineVec(x.InterpretVec(a), x.InterpretVec(b))
		if math.Abs(ref-vec) > tol {
			t.Fatalf("Cosine mismatch on (%q, %q): ref %.17g vec %.17g", a, b, ref, vec)
		}
		if sim := x.Similarity(a, b); math.Abs(ref-sim) > tol {
			t.Fatalf("Similarity mismatch on (%q, %q): ref %.17g got %.17g", a, b, ref, sim)
		}
		// The dense accumulation adds in the same order as the map
		// path, so individual weights must be bit-identical.
		rm := x.Interpret(a)
		vm := x.InterpretVec(a).Map()
		if len(rm) != len(vm) {
			t.Fatalf("vector sizes differ for %q: %d vs %d", a, len(rm), len(vm))
		}
		for c, w := range rm {
			if vm[c] != w {
				t.Fatalf("weight differs for %q concept %d: %v vs %v", a, c, w, vm[c])
			}
		}
	}
}

// classifyReference reimplements the pre-vectorization Classify over
// the map path, tie-break included.
func classifyReference(x *Index, text string) (string, float64) {
	v := x.Interpret(text)
	if len(v) == 0 {
		return "", 0
	}
	var norm float64
	for _, w := range v {
		norm += w * w
	}
	norm = math.Sqrt(norm)
	best, bw := -1, 0.0
	for c, w := range v {
		if w > bw || (w == bw && (best < 0 || c < best)) {
			best, bw = c, w
		}
	}
	if best < 0 || norm == 0 {
		return "", 0
	}
	return x.concepts[best], bw / norm
}

// TestClassifyMatchesReference: the vectorized Classify picks the same
// concept and a cosine within 1e-12 of the reference on random
// phrases.
func TestClassifyMatchesReference(t *testing.T) {
	x := New(BuiltinKB())
	vocab := kbVocabulary()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		text := randomPhrase(rng, vocab)
		refTitle, refCos := classifyReference(x, text)
		title, cos := x.Classify(text)
		if title != refTitle {
			t.Fatalf("Classify(%q) = %q, reference %q", text, title, refTitle)
		}
		if math.Abs(cos-refCos) > 1e-12 {
			t.Fatalf("Classify(%q) cosine %.17g, reference %.17g", text, cos, refCos)
		}
	}
}

// TestClassifyWithSupportSingleTokenization: the rewritten
// ClassifyWithSupport returns the same triple as composing Classify
// with the old support scan.
func TestClassifyWithSupportSingleTokenization(t *testing.T) {
	x := New(BuiltinKB())
	vocab := kbVocabulary()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		text := randomPhrase(rng, vocab)
		wantTitle, wantCos := classifyReference(x, text)
		// reference support scan: distinct terms with a posting on the
		// winning concept.
		wantSupport := 0
		if wantTitle != "" {
			concept := -1
			for j, title := range x.concepts {
				if title == wantTitle {
					concept = j
					break
				}
			}
			seen := map[string]bool{}
			for _, term := range Terms(text) {
				if seen[term] {
					continue
				}
				seen[term] = true
				for _, p := range x.postings[term] {
					if p.concept == concept {
						wantSupport++
						break
					}
				}
			}
		}
		title, cos, support := x.ClassifyWithSupport(text)
		if title != wantTitle || support != wantSupport || math.Abs(cos-wantCos) > 1e-12 {
			t.Fatalf("ClassifyWithSupport(%q) = (%q, %.17g, %d), want (%q, %.17g, %d)",
				text, title, cos, support, wantTitle, wantCos, wantSupport)
		}
	}
}

// TestInterpretMemoBound: the memo stays within its configured
// capacity under a flood of distinct keys, and evictions are counted.
func TestInterpretMemoBound(t *testing.T) {
	x := New(BuiltinKB())
	total := memoShards * memoShardCap
	for i := 0; i < total+5000; i++ {
		x.InterpretVec(fmt.Sprintf("location data variant %d", i))
	}
	if n := x.memoLen(); n > total {
		t.Fatalf("memo holds %d entries, cap %d", n, total)
	}
	if st := x.CacheStats(); st.Evictions == 0 {
		t.Fatalf("expected evictions after overflow, stats %+v", st)
	}
}

// TestInterpretMemoSkipsHugeTexts: oversized texts are interpreted but
// not retained.
func TestInterpretMemoSkipsHugeTexts(t *testing.T) {
	x := New(BuiltinKB())
	huge := strings.Repeat("location ", memoMaxKeyLen)
	v := x.InterpretVec(huge)
	if v.Len() == 0 {
		t.Fatal("huge text should still interpret")
	}
	if n := x.memoLen(); n != 0 {
		t.Fatalf("huge text memoized (%d entries)", n)
	}
}

// TestInterpretVecConcurrent hammers the memo from many goroutines
// over an overlapping phrase set (run under -race) and checks every
// result against the serial answer.
func TestInterpretVecConcurrent(t *testing.T) {
	x := New(BuiltinKB())
	vocab := kbVocabulary()
	rng := rand.New(rand.NewSource(3))
	phrases := make([]string, 200)
	for i := range phrases {
		phrases[i] = randomPhrase(rng, vocab)
	}
	want := make([]Vector, len(phrases))
	for i, p := range phrases {
		want[i] = x.Interpret(p)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				i := (g*31 + round*7) % len(phrases)
				got := x.InterpretVec(phrases[i]).Map()
				for c, w := range want[i] {
					if got[c] != w {
						errs <- fmt.Errorf("phrase %q concept %d: got %v want %v", phrases[i], c, got[c], w)
						return
					}
				}
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("phrase %q: %d concepts, want %d", phrases[i], len(got), len(want[i]))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCosineVecEdgeCases mirrors the reference edge semantics.
func TestCosineVecEdgeCases(t *testing.T) {
	x := New(BuiltinKB())
	empty := x.InterpretVec("qwzx bnmp")
	loc := x.InterpretVec("location")
	if s := CosineVec(empty, loc); s != 0 {
		t.Fatalf("empty vs loc = %v", s)
	}
	if s := CosineVec(nil, loc); s != 0 {
		t.Fatalf("nil vs loc = %v", s)
	}
	if s := CosineVec(loc, loc); s < 0.999 || s > 1 {
		t.Fatalf("self similarity = %v", s)
	}
}
