package esa

import (
	"testing"
	"testing/quick"
)

// TestKnownTermCountMatchesUnigrams: the gate's inline scan agrees
// with counting known terms over the shared unigram tokenizer, on
// fixed texts and on arbitrary fuzzed ones.
func TestKnownTermCountMatchesUnigrams(t *testing.T) {
	x := Default()
	ref := func(text string) int {
		n := 0
		for _, u := range unigrams(text) {
			if _, ok := x.postings[u]; ok {
				n++
			}
		}
		return n
	}
	fixed := []string{
		"", "the the the", "We collect your precise LOCATION and contacts.",
		"GPS gps Gps", "e-mail and третий ip id os", "location",
		"addresses address Address-Book", "a b c d",
	}
	for _, text := range fixed {
		if got, want := x.KnownTermCount(text, 1<<30), ref(text); got != want {
			t.Errorf("KnownTermCount(%q) = %d, want %d", text, got, want)
		}
	}
	f := func(text string) bool {
		return x.KnownTermCount(text, 1<<30) == ref(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownTermCountEarlyExit(t *testing.T) {
	x := Default()
	text := "location location location location"
	if got := x.KnownTermCount(text, 2); got != 2 {
		t.Fatalf("max=2 returned %d", got)
	}
	if got := x.KnownTermCount(text, 1); got != 1 {
		t.Fatalf("max=1 returned %d", got)
	}
}
