package esa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSamePhrasesMatch(t *testing.T) {
	x := Default()
	pairs := [][2]string{
		{"location", "location information"},
		{"location", "your current location"},
		{"gps coordinates", "location"},
		{"contact", "contact list"},
		{"contacts", "address book"},
		{"device id", "device identifier"},
		{"phone number", "telephone number"},
		{"email address", "e-mail address"},
		{"ip address", "internet protocol address"},
		{"installed applications", "app list"},
	}
	for _, pr := range pairs {
		if sim := x.Similarity(pr[0], pr[1]); sim < DefaultThreshold {
			t.Errorf("Similarity(%q, %q) = %.3f, want >= %.2f", pr[0], pr[1], sim, DefaultThreshold)
		}
	}
}

func TestDifferentPhrasesDoNotMatch(t *testing.T) {
	x := Default()
	pairs := [][2]string{
		{"location", "contact"},
		{"location", "device id"},
		{"camera", "calendar"},
		{"phone number", "ip address"},
		{"contacts", "browsing history"},
		{"location", "service"},
		{"account", "advertisement"},
	}
	for _, pr := range pairs {
		if sim := x.Similarity(pr[0], pr[1]); sim >= DefaultThreshold {
			t.Errorf("Similarity(%q, %q) = %.3f, want < %.2f", pr[0], pr[1], sim, DefaultThreshold)
		}
	}
}

// TestPaperFalsePositiveMode reproduces the documented ESA failure: the
// bare word "information" is semantically close to "personal
// information", which caused a false alert for com.StaffMark (§V-E).
func TestPaperFalsePositiveMode(t *testing.T) {
	x := Default()
	if sim := x.Similarity("information", "personal information"); sim < DefaultThreshold {
		t.Fatalf("expected over-match of %q vs %q (paper FP mode), got %.3f", "information", "personal information", sim)
	}
}

func TestSimilarityProperties(t *testing.T) {
	x := Default()
	words := []string{"location", "contact", "device id", "camera",
		"personal information", "cookie", "account", "sms messages",
		"weather forecast", "xyzzy unknown term"}
	// symmetry and range
	f := func(i, j uint8) bool {
		a := words[int(i)%len(words)]
		b := words[int(j)%len(words)]
		s1 := x.Similarity(a, b)
		s2 := x.Similarity(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// reflexivity on known texts
	for _, w := range words[:8] {
		if s := x.Similarity(w, w); s < 0.999 {
			t.Errorf("Similarity(%q, %q) = %.3f, want 1", w, w, s)
		}
	}
}

func TestTopConcept(t *testing.T) {
	x := Default()
	cases := map[string]string{
		"your current location":              "location",
		"address book entries":               "contact",
		"the list of installed applications": "app list",
		"your real phone number":             "phone number",
	}
	for text, want := range cases {
		got, w := x.TopConcept(text)
		if got != want {
			t.Errorf("TopConcept(%q) = %q (%.3f), want %q", text, got, w, want)
		}
	}
}

func TestEmptyAndUnknown(t *testing.T) {
	x := Default()
	if s := x.Similarity("", "location"); s != 0 {
		t.Errorf("empty text similarity = %v", s)
	}
	if s := x.Similarity("qwzx bnmp", "location"); s != 0 {
		t.Errorf("unknown text similarity = %v", s)
	}
	if c, _ := x.TopConcept(""); c != "" {
		t.Errorf("TopConcept empty = %q", c)
	}
}

func TestNewEmptyKB(t *testing.T) {
	x := New(nil)
	if s := x.Similarity("location", "location"); s != 0 {
		t.Errorf("empty KB similarity = %v", s)
	}
}

func TestConcepts(t *testing.T) {
	x := Default()
	concepts := Concepts(t)
	if len(concepts) == 0 {
		t.Fatal("no concepts")
	}
	_ = x
}

func Concepts(t *testing.T) []string {
	t.Helper()
	return Default().Concepts()
}

func TestTopConceptVsClassify(t *testing.T) {
	x := Default()
	// TopConcept returns raw interpretation weight; Classify a cosine.
	title1, w := x.TopConcept("your current location")
	title2, cos := x.Classify("your current location")
	if title1 != title2 {
		t.Fatalf("TopConcept %q vs Classify %q", title1, title2)
	}
	if w <= 0 || cos <= 0 || cos > 1 {
		t.Fatalf("weights: raw %v cos %v", w, cos)
	}
}

func TestClassifyEmpty(t *testing.T) {
	x := Default()
	if title, cos := x.Classify(""); title != "" || cos != 0 {
		t.Fatalf("Classify empty = %q %v", title, cos)
	}
	if _, _, support := x.ClassifyWithSupport("zzz qqq"); support != 0 {
		t.Fatalf("support for unknown text = %d", support)
	}
}

func TestClassifyWithSupportCounts(t *testing.T) {
	x := Default()
	title, _, support := x.ClassifyWithSupport("gps latitude longitude coordinates")
	if title != "location" {
		t.Fatalf("title = %q", title)
	}
	if support < 4 {
		t.Fatalf("support = %d, want >= 4", support)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if Cosine(nil, Vector{1: 1}) != 0 {
		t.Fatal("nil vector cosine nonzero")
	}
	if Cosine(Vector{1: 1}, Vector{2: 1}) != 0 {
		t.Fatal("disjoint vectors cosine nonzero")
	}
	if c := Cosine(Vector{1: 2}, Vector{1: 3}); c < 0.999 || c > 1 {
		t.Fatalf("parallel vectors cosine = %v", c)
	}
}

func TestTermsBigrams(t *testing.T) {
	terms := Terms("address book entries")
	joined := map[string]bool{}
	for _, tm := range terms {
		joined[tm] = true
	}
	if !joined["address_book"] {
		t.Fatalf("bigram missing: %v", terms)
	}
	if !joined["address"] || !joined["book"] {
		t.Fatalf("unigrams missing: %v", terms)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"contacts": "contact", "policies": "policy", "addresses": "address",
		"news": "news", "gps": "gps", "address": "address",
		"status": "status", "analysis": "analysis", "boxes": "box",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}
