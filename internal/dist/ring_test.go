package dist

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingStable: the mapping is a pure function of the endpoint list —
// two independently built rings agree on every key, which is what lets
// separate worker processes route to the same shard without talking to
// each other.
func TestRingStable(t *testing.T) {
	eps := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(eps, 0)
	r2 := NewRing(eps, 0)
	for _, k := range ringKeys(500) {
		if r1.Pick(k) != r2.Pick(k) {
			t.Fatalf("rings disagree on %q: %d vs %d", k, r1.Pick(k), r2.Pick(k))
		}
	}
}

// TestRingBalance: vnodes spread keys so no endpoint starves or hoards.
func TestRingBalance(t *testing.T) {
	eps := []string{"s0", "s1", "s2", "s3"}
	r := NewRing(eps, 0)
	counts := make([]int, len(eps))
	const n = 4000
	for _, k := range ringKeys(n) {
		counts[r.Pick(k)]++
	}
	for i, c := range counts {
		// Perfect balance is n/4 = 1000; accept a wide band — the test
		// guards against degenerate skew, not statistical purity.
		if c < n/10 || c > n/2 {
			t.Fatalf("endpoint %d owns %d of %d keys: %v", i, c, n, counts)
		}
	}
}

// TestRingMinimalMovement: growing the ring by one endpoint remaps only
// roughly the new endpoint's share, so a resharded deployment keeps
// most of its warm cache.
func TestRingMinimalMovement(t *testing.T) {
	old := NewRing([]string{"s0", "s1", "s2"}, 0)
	grown := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	moved := 0
	keys := ringKeys(4000)
	for _, k := range keys {
		o, g := old.Pick(k), grown.Pick(k)
		if o != g {
			if g != 3 {
				t.Fatalf("key %q moved between surviving endpoints: %d -> %d", k, o, g)
			}
			moved++
		}
	}
	// Expect ~1/4 of keys to move to the new endpoint; reject > 1/2.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("%d of %d keys moved on grow", moved, len(keys))
	}
}

// TestRingEmpty: an empty ring picks -1 rather than panicking.
func TestRingEmpty(t *testing.T) {
	if got := NewRing(nil, 0).Pick("k"); got != -1 {
		t.Fatalf("empty ring picked %d", got)
	}
}
