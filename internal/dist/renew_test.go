package dist

import (
	"context"
	"testing"
	"time"

	"ppchecker/internal/stream"
)

// TestExpiryTickDerivation pins the sweep-clock contract: the tick is
// the renewal interval (TTL/3) clamped to [25ms, 1s]. The floor keeps
// tiny-TTL tests from spinning the sweeper hot; the cap bounds expiry
// latency under production-sized TTLs (the old TTL/2 clock would have
// swept a 30s lease every 15s).
func TestExpiryTickDerivation(t *testing.T) {
	cases := []struct {
		ttl, want time.Duration
	}{
		{30 * time.Millisecond, minExpiryTick},           // TTL/3 = 10ms, floored
		{75 * time.Millisecond, minExpiryTick},           // TTL/3 = 25ms, at the floor
		{300 * time.Millisecond, 100 * time.Millisecond}, // TTL/3, unclamped
		{900 * time.Millisecond, 300 * time.Millisecond}, // TTL/3, unclamped
		{30 * time.Second, maxExpiryTick},                // TTL/3 = 10s, capped
	}
	for _, c := range cases {
		if got := expiryTick(c.ttl); got != c.want {
			t.Errorf("expiryTick(%s) = %s, want %s", c.ttl, got, c.want)
		}
	}
	if got := renewInterval(30 * time.Second); got != 10*time.Second {
		t.Errorf("renewInterval(30s) = %s, want 10s", got)
	}
	if got := renewInterval(0); got != time.Millisecond {
		t.Errorf("renewInterval(0) = %s, want 1ms", got)
	}
}

// TestRenewalKeepsSlowAppAlive: with renewal on, an analysis that takes
// three times the lease TTL finishes under its original lease — no
// expiry, no reassignment — and the run is still bit-identical to the
// single-process reference. The TTL is a failure detector, not a
// per-app latency bound.
func TestRenewalKeepsSlowAppAlive(t *testing.T) {
	const seed, n = 91, 2
	want := referenceRun(t, seed, n)

	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(seed, n),
		LeaseTTL: 400 * time.Millisecond,
	})
	srv := newCoordServer(t, c)

	// Wait runs concurrently with the worker so its sweep clock is
	// live — exactly the clock that would reclaim the lease if the
	// heartbeats did not keep moving the deadline.
	ws, got := runWorkerAndWait(t, c, WorkerOptions{
		Coordinator:  srv.URL,
		Name:         "slow-but-alive",
		Concurrency:  1,
		PollInterval: 5 * time.Millisecond,
		PerAppDelay:  1200 * time.Millisecond, // 3x the TTL
		RenewLeases:  true,
	})
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("renewed run %+v != reference %+v", got.RunStats, want.RunStats)
	}
	snap := c.StatsSnapshot()
	if snap.Expired != 0 {
		t.Fatalf("renewal failed to keep the lease alive: %d expired", snap.Expired)
	}
	// 1.2s of analysis at a ~133ms heartbeat: well over one renewal per
	// app, on both sides of the protocol.
	if snap.Renewals < 2 || ws.Renewals < 2 {
		t.Fatalf("too few heartbeats: coordinator %d, worker %d", snap.Renewals, ws.Renewals)
	}
	if ws.RenewalsLost != 0 {
		t.Fatalf("worker lost %d leases mid-app", ws.RenewalsLost)
	}
}

// TestNoRenewalReassignsSlowApp: with renewal off (the default), a
// lease must outlive the whole analysis — a slow app past the TTL is
// reclaimed and counted expired. This test fails if renewal ever
// becomes unconditional: heartbeats would keep the lease alive and
// Expired would stay zero.
func TestNoRenewalReassignsSlowApp(t *testing.T) {
	const seed, n = 92, 1
	want := referenceRun(t, seed, n)

	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(seed, n),
		LeaseTTL: 150 * time.Millisecond,
	})
	srv := newCoordServer(t, c)

	ws, got := runWorkerAndWait(t, c, WorkerOptions{
		Coordinator:  srv.URL,
		Name:         "slow-and-silent",
		Concurrency:  1,
		PollInterval: 5 * time.Millisecond,
		PerAppDelay:  500 * time.Millisecond, // blows well past the TTL
		// RenewLeases deliberately false.
	})
	// First-report-wins still folds the late report exactly once.
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("expired run %+v != reference %+v", got.RunStats, want.RunStats)
	}
	snap := c.StatsSnapshot()
	if snap.Expired < 1 {
		t.Fatal("silent worker's lease never expired — is renewal unconditionally on?")
	}
	if snap.Renewals != 0 || ws.Renewals != 0 {
		t.Fatalf("renewal traffic with RenewLeases off: coordinator %d, worker %d",
			snap.Renewals, ws.Renewals)
	}
}

// TestLateRenewalCannotReviveExpiredLease: a heartbeat arriving after
// the deadline must be denied — by then the item may already be
// reassigned, and reviving the old lease ID would double-track it.
func TestLateRenewalCannotReviveExpiredLease(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(93, 1),
		LeaseTTL: 40 * time.Millisecond,
	})
	srv := newCoordServer(t, c)

	lease, status := postLease(t, srv.URL, "latecomer")
	if status != 200 {
		t.Fatalf("lease: status %d", status)
	}
	time.Sleep(80 * time.Millisecond) // past the deadline

	resp := postRenew(t, srv.URL, lease.LeaseID, "latecomer")
	if resp.OK {
		t.Fatal("late renewal revived an expired lease")
	}
	snap := c.StatsSnapshot()
	if snap.Expired != 1 || snap.RenewalsDenied != 1 || snap.Renewals != 0 {
		t.Fatalf("snapshot after late renewal: %+v", snap)
	}
	// The item is reclaimed, not lost.
	if again, status := postLease(t, srv.URL, "fresh"); status != 200 || again.Name != lease.Name {
		t.Fatalf("expired item not re-leasable: status %d lease %+v", status, again)
	}
}

// TestRenewalExtendsDeadline: heartbeats actually move the deadline —
// a lease renewed just before each expiry survives several TTL windows
// and is still renewable at the end.
func TestRenewalExtendsDeadline(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(94, 1),
		LeaseTTL: 120 * time.Millisecond,
	})
	srv := newCoordServer(t, c)

	lease, _ := postLease(t, srv.URL, "heartbeater")
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond) // half a TTL: inside the window
		if resp := postRenew(t, srv.URL, lease.LeaseID, "heartbeater"); !resp.OK {
			t.Fatalf("renewal %d denied", i)
		}
	}
	// 300ms of wall clock across a 120ms TTL: only renewal kept it.
	snap := c.StatsSnapshot()
	if snap.Expired != 0 || snap.Renewals != 5 {
		t.Fatalf("snapshot after heartbeats: %+v", snap)
	}
}

// TestExpiryLatencyBounded: with zero lease traffic, Wait's sweep
// clock alone must reclaim an expired lease promptly — within a few
// ticks of the deadline, not a TTL multiple later.
func TestExpiryLatencyBounded(t *testing.T) {
	const ttl = 250 * time.Millisecond
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(95, 1),
		LeaseTTL: ttl,
	})
	srv := newCoordServer(t, c)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waitDone := make(chan struct{})
	go func() { // the only sweeper: StatsSnapshot below never sweeps
		defer close(waitDone)
		c.Wait(ctx)
	}()

	start := time.Now()
	if _, status := postLease(t, srv.URL, "doomed"); status != 200 {
		t.Fatalf("lease: status %d", status)
	}
	var elapsed time.Duration
	for {
		if c.StatsSnapshot().Expired >= 1 {
			elapsed = time.Since(start)
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("lease never expired under the Wait sweep clock")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-waitDone

	if elapsed < ttl {
		t.Fatalf("expired after %s, before the %s TTL", elapsed, ttl)
	}
	// Deadline + a generous handful of sweep ticks (tick = TTL/3 ≈
	// 83ms). The old TTL/2 clock passed this too; the regression this
	// pins is a sweep period decoupled from (or much larger than) the
	// renewal interval.
	if limit := ttl + 8*expiryTick(ttl); elapsed > limit {
		t.Fatalf("expiry took %s, want <= %s (sweep clock too slow)", elapsed, limit)
	}
}
