// Package dist is the distributed analysis tier: a coordinator/worker
// topology that scales the streaming corpus runner (internal/stream)
// past one process toward the hundreds-of-thousands-of-versions regime
// of the longitudinal study.
//
// Topology:
//
//	Coordinator  owns the stream.Source, the checkpoint journal and
//	             the corpus-level stats. It serves work *leases* over
//	             HTTP — portable stream.Specs, never closures — with a
//	             bounded number outstanding (backpressure), reclaims
//	             leases whose worker died mid-app (expiry +
//	             reassignment), folds worker-reported outcomes into one
//	             stream.Stats, and journals every completed app so a
//	             killed coordinator resumes bit-identically, exactly
//	             like a single-process run.
//	Worker       a thin wrapper over the existing eval.CheckApp
//	             pipeline: pull a lease, rebuild the item with
//	             stream.SpecResolver, analyze on a local checker,
//	             report the outcome. Workers hold no corpus state; a
//	             SIGKILLed worker costs only its outstanding leases,
//	             which expire and are re-leased to the survivors.
//	Shards       the coordinator hosts the longi artifact store and the
//	             shared library-policy analysis cache as consistent-
//	             hash-sharded HTTP endpoints (/shard/<i>/artifact/...).
//	             Workers read through them (ShardedStore + Backing); a
//	             dead or slow shard degrades to local compute, never a
//	             failed app.
//
// The correctness bar, enforced by the crash soak and the chaos suite:
// a coordinator plus N workers over a seeded firehose — workers
// SIGKILLed or SIGSTOPped, renewals dropped, the coordinator itself
// killed and a standby promoted mid-run — finishes with RunStats
// bit-identical to a single-process stream.Run over the same source.
//
// Failure model:
//
//   - Worker death: outstanding leases expire after LeaseTTL and are
//     reassigned. A lease is not a lock — a zombie worker may still
//     report after expiry; the coordinator folds each app name at most
//     once (first report wins) so duplicates are counted, never
//     double-folded.
//   - Slow app: with renewal on (WorkerOptions.RenewLeases), a worker
//     heartbeats each held lease every TTL/3 via POST /renew, so a
//     lease only expires after the worker goes silent for a full TTL —
//     LeaseTTL bounds failure detection, not per-app latency. With
//     renewal off, a lease that outlives its TTL is reassigned and the
//     app may be analyzed twice; the first report to arrive is folded,
//     the other is a counted duplicate.
//   - Coordinator death: the journal is the contract. Completed apps
//     were appended before being folded; reopening the journal replays
//     them and the new coordinator leases only the remainder. A
//     Standby tails the same journal in follower mode and, on
//     promotion (POST /promote, or automatically when its primary
//     probe fails), reopens it authoritatively and resumes serving
//     leases; workers carry an address list and rotate to the standby
//     on transport errors or not-primary responses.
//   - Shard death: reads and writes degrade to misses; workers fall
//     back to local compute. Throughput suffers, correctness does not.
//     Shards hosted on longi.DirStore additionally survive coordinator
//     restarts and failovers (temp+rename appends; a corrupt artifact
//     decodes as a miss, never a poisoned result).
package dist

import "ppchecker/internal/stream"

// Wire types for the coordinator's lease protocol. Endpoints:
//
//	POST /lease    LeaseRequest -> 200 LeaseResponse | 204 no work yet
//	               (retry after a short poll) | 410 run complete
//	POST /renew    RenewRequest -> 200 RenewResponse (heartbeat for a
//	               held lease; OK false once the lease is gone)
//	POST /report   ReportRequest -> 200 ReportResponse
//	GET  /stats    StatsResponse
//	GET  /config   ConfigResponse
//	GET  /status   StatusResponse (primary or standby role)
//	POST /promote  standby only: promote to primary (see Standby)
//	GET  /healthz  200 once serving
//	*    /shard/<i>/artifact/<stage>/<key>  the hosted artifact shards
//
// A standby answers the work endpoints (/lease, /renew, /report) with
// 503 until promoted; workers treat any non-OK lease response as a cue
// to rotate their coordinator address list.

// LeaseRequest asks for one unit of work.
type LeaseRequest struct {
	// Worker identifies the caller for lease tracking and /stats.
	Worker string `json:"worker"`
}

// LeaseResponse grants one item under a deadline.
type LeaseResponse struct {
	LeaseID string `json:"lease_id"`
	// Name and Hash are the item's resume identity (informational:
	// the worker recomputes both from the spec's actual content).
	Name string `json:"name"`
	Hash string `json:"hash"`
	// Spec is the portable work description stream.SpecResolver turns
	// back into a runnable item.
	Spec stream.Spec `json:"spec"`
	// TTLMillis is the lease deadline; a report arriving later may
	// find the item re-leased to another worker.
	TTLMillis int64 `json:"ttl_ms"`
}

// RenewRequest heartbeats one held lease (POST /renew). Renewing
// workers send it every TTL/3 for as long as the analysis runs.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
}

// RenewResponse answers a heartbeat.
type RenewResponse struct {
	// OK: the lease was live and its deadline was extended by a full
	// TTL. False: the coordinator no longer holds the lease — it
	// expired and was reassigned, or a promoted standby never granted
	// it. The worker stops renewing but finishes the analysis; the
	// first report to arrive wins the fold either way.
	OK bool `json:"ok"`
	// TTLMillis echoes the (possibly reconfigured) lease TTL.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// ReportRequest delivers one finished app.
type ReportRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Name    string `json:"name"`
	Hash    string `json:"hash"`
	// Outcome is the eval.Outcome wire name. "skipped" means the
	// worker abandoned the app (its context died): the item is
	// requeued, not folded.
	Outcome     string `json:"outcome"`
	Retries     int    `json:"retries,omitempty"`
	Partial     bool   `json:"partial,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Exhausted   bool   `json:"exhausted,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// Accepted: the outcome was folded into the run stats (and
	// journaled). False for duplicates and skips.
	Accepted bool `json:"accepted"`
	// Duplicate: another worker's report for this app arrived first.
	Duplicate bool `json:"duplicate,omitempty"`
}

// ConfigResponse tells workers how the coordinator is laid out.
type ConfigResponse struct {
	// Shards is the number of hosted artifact shards; shard i lives at
	// <coordinator>/shard/<i>. Zero means no remote cache tier.
	Shards int `json:"shards"`
	// LeaseTTLMillis is the coordinator's lease deadline.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// StatsResponse is the coordinator's live accounting.
type StatsResponse struct {
	// Done: the source is exhausted and every item is folded.
	Done bool `json:"done"`
	// The eval.RunStats counts folded so far.
	Apps     int `json:"apps"`
	Checked  int `json:"checked"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	Retried  int `json:"retried"`
	Skipped  int `json:"skipped"`
	// Replayed/Reanalyzed mirror stream.Stats resume accounting.
	Replayed   int `json:"replayed"`
	Reanalyzed int `json:"reanalyzed"`
	// Lease accounting.
	Granted    int64 `json:"granted"`
	Reports    int64 `json:"reports"`
	Expired    int64 `json:"expired"`
	Duplicates int64 `json:"duplicates"`
	// Renewals counts accepted heartbeats; RenewalsDenied counts
	// heartbeats for leases the coordinator no longer held (already
	// expired, or granted by a dead predecessor).
	Renewals       int64 `json:"renewals"`
	RenewalsDenied int64 `json:"renewals_denied"`
	Outstanding    int   `json:"outstanding"`
	Pending        int   `json:"pending"`
	// OutstandingByWorker maps worker name to its live lease count
	// (the crash soak uses it to kill a worker that provably holds
	// work).
	OutstandingByWorker map[string]int `json:"outstanding_by_worker,omitempty"`
}

// StatusResponse describes a coordinator's role (GET /status).
type StatusResponse struct {
	// Role is "primary" (serving leases) or "standby" (tailing the
	// journal, work endpoints answer 503).
	Role string `json:"role"`
	// TailedRecords is how many journal app records a standby has
	// folded into its follower replay so far (standby only).
	TailedRecords int `json:"tailed_records,omitempty"`
	// TailError surfaces a follower-side tail failure (standby only);
	// promotion still works — it re-reads the journal authoritatively.
	TailError string `json:"tail_error,omitempty"`
	// Promoted marks a coordinator that started life as a standby.
	Promoted bool `json:"promoted,omitempty"`
}
