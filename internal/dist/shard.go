package dist

import (
	"fmt"
	"net/http"

	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
)

// ShardedStore fans one longi.Store address space out over shard
// endpoints by consistent hash. It is the worker-side read-through
// layer in front of the coordinator-hosted shards: a shard error —
// dead endpoint, timeout, bad response — degrades to a miss on Get and
// a silent drop on Put, so losing a shard costs recomputes, never
// failed apps. The obs counters (dist-shard-hits / -misses / -errors)
// make the degradation visible.
type ShardedStore struct {
	shards   []longi.Store
	ring     *Ring
	observer *obs.Observer
}

// NewShardedStore builds the sharded layer. names identify the shards
// on the ring — they must be identical (content and order) in every
// process that shares the shard set, or keys will map differently;
// use the shard URLs.
func NewShardedStore(shards []longi.Store, names []string, observer *obs.Observer) (*ShardedStore, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("dist: no shards")
	}
	if len(shards) != len(names) {
		return nil, fmt.Errorf("dist: %d shards but %d names", len(shards), len(names))
	}
	return &ShardedStore{shards: shards, ring: NewRing(names, 0), observer: observer}, nil
}

// NewHTTPShardedStore wires a sharded store over remote shard URLs —
// the worker-side constructor.
func NewHTTPShardedStore(urls []string, client *http.Client, observer *obs.Observer) (*ShardedStore, error) {
	shards := make([]longi.Store, len(urls))
	for i, u := range urls {
		shards[i] = longi.NewHTTPStore(u, client)
	}
	return NewShardedStore(shards, urls, observer)
}

// pick routes (stage, key) to its shard. The stage participates in the
// routing key so different stages of the same content spread out.
func (s *ShardedStore) pick(stage, key string) longi.Store {
	return s.shards[s.ring.Pick(stage+"/"+key)]
}

// Get reads through the owning shard; errors degrade to misses.
func (s *ShardedStore) Get(stage, key string) ([]byte, bool, error) {
	data, hit, err := s.pick(stage, key).Get(stage, key)
	switch {
	case err != nil:
		s.observer.AddCounter("dist-shard-errors", 1)
		return nil, false, nil
	case hit:
		s.observer.AddCounter("dist-shard-hits", 1)
		return data, true, nil
	default:
		s.observer.AddCounter("dist-shard-misses", 1)
		return nil, false, nil
	}
}

// Put writes through to the owning shard, best effort.
func (s *ShardedStore) Put(stage, key string, data []byte) error {
	if err := s.pick(stage, key).Put(stage, key, data); err != nil {
		s.observer.AddCounter("dist-shard-errors", 1)
	}
	return nil
}

// Artifact stage namespaces for the remote cache tiers the
// coordinator hosts. Each tier keys the same store under its own
// stage, so the two address spaces can never collide.
const (
	// libAnalysisStage holds serialized library-policy analyses (the
	// remote tier behind core.AnalysisCache).
	libAnalysisStage = "lib-analysis"
	// esaInterpretStage holds serialized ESA concept vectors (the
	// remote tier behind the esa interpret memo).
	esaInterpretStage = "esa-interpret"
)

// Backing adapts a longi.Store (typically a ShardedStore) into the
// core.CacheBacking / esa.VecBacking contract: texts are content-
// addressed with longi.StageKey under the backing's stage, bound to a
// namespace so caches filled by differently-configured checkers can
// never alias.
type Backing struct {
	store     longi.Store
	stage     string
	namespace string
}

// NewBacking builds the library-policy cache backing over a store. The
// namespace must encode everything that changes an analysis result
// (checker configuration); every worker sharing a shard set must use
// the same namespace for the same configuration.
func NewBacking(store longi.Store, namespace string) *Backing {
	return &Backing{store: store, stage: libAnalysisStage, namespace: namespace}
}

// NewVecBacking builds the ESA-interpret cache backing over the same
// store, keyed under its own stage. The KB is compiled into the
// binary, so the namespace only needs to separate incompatible
// deployments, same as the lib-policy tier.
func NewVecBacking(store longi.Store, namespace string) *Backing {
	return &Backing{store: store, stage: esaInterpretStage, namespace: namespace}
}

func (b *Backing) key(text string) string {
	return longi.StageKey(b.stage, []byte(b.namespace), []byte(text))
}

// Load fetches the serialized artifact for a text; any error is a miss
// (the caller then computes locally).
func (b *Backing) Load(text string) ([]byte, bool) {
	data, hit, err := b.store.Get(b.stage, b.key(text))
	if err != nil || !hit {
		return nil, false
	}
	return data, true
}

// Store writes a computed artifact through, best effort.
func (b *Backing) Store(text string, data []byte) {
	_ = b.store.Put(b.stage, b.key(text), data)
}
