package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/serve"
	"ppchecker/internal/stream"
)

// CoordinatorOptions configure the lease server.
type CoordinatorOptions struct {
	// Source feeds the run. Every item must carry a portable Spec
	// (DirSource, FirehoseSource); an in-memory-only source is a
	// configuration error surfaced on the first lease.
	Source stream.Source
	// Journal, when non-nil, checkpoints every folded app — the same
	// durable log, format and resume contract as stream.Run.
	Journal *stream.Journal
	// Replay is the recovered state from stream.OpenJournal; folded
	// outcomes seed the stats and matching items are never re-leased.
	Replay *stream.Replay
	// MaxOutstanding bounds concurrently leased items — the
	// distributed analogue of the stream queue depth: the source is
	// pulled only as leases free up, so an endless firehose cannot be
	// leased faster than workers finish. <= 0 means 64.
	MaxOutstanding int
	// LeaseTTL is how long a worker may hold an item before it is
	// reclaimed and reassigned. Size it well above the per-app
	// analysis timeout; <= 0 means 30s.
	LeaseTTL time.Duration
	// Observer receives the dist-* counters.
	Observer *obs.Observer
	// Shards are the artifact stores hosted on the coordinator's
	// handler at /shard/<i>/artifact/... — the remote tier behind the
	// workers' analysis caches and longi stores.
	Shards []longi.Store
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 64
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	return o
}

// workItem is one leasable unit.
type workItem struct {
	name string
	hash string
	spec stream.Spec
}

// lease is one granted item.
type lease struct {
	worker   string
	item     *workItem
	deadline time.Time
}

// Coordinator owns the source, journal and corpus stats, and serves
// the lease protocol. Construct with NewCoordinator, mount Handler()
// on a server, then Wait() for the run to complete.
type Coordinator struct {
	opts CoordinatorOptions

	mu          sync.Mutex
	pending     []*workItem       // reclaimed leases, served before new source pulls
	outstanding map[string]*lease // lease id -> lease
	done        map[string]bool   // app name -> outcome folded
	stats       stream.Stats
	granted     int64
	reports     int64
	expired     int64
	duplicates  int64
	renewals    int64
	renewDenied int64
	srcDone     bool
	srcErr      error
	journalErr  error
	seq         int64
	folding     int // reports claimed but not yet folded (journal append in flight)

	finished     chan struct{}
	finishedOnce sync.Once
}

// NewCoordinator builds a coordinator over a source.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:        opts,
		outstanding: map[string]*lease{},
		done:        map[string]bool{},
		finished:    make(chan struct{}),
	}
	if opts.Replay != nil {
		c.stats.RunStats = opts.Replay.Stats
		c.stats.Replayed = len(opts.Replay.Done)
		for name := range opts.Replay.Done {
			c.done[name] = true
		}
	}
	// Detect the degenerate already-done run (empty or fully replayed
	// source) without waiting for a worker to ask.
	c.mu.Lock()
	c.maybeFinishLocked()
	c.mu.Unlock()
	return c
}

// takeLocked produces the next leasable item: reclaimed work first,
// then fresh source pulls with the same replay-skip semantics as
// stream.Run. Returns nil when nothing is leasable right now.
func (c *Coordinator) takeLocked() *workItem {
	if len(c.pending) > 0 {
		item := c.pending[0]
		c.pending = c.pending[1:]
		return item
	}
	for !c.srcDone {
		item, err := c.opts.Source.Next(context.Background())
		if err != nil {
			c.srcDone = true
			if !errors.Is(err, io.EOF) {
				c.srcErr = err
			}
			return nil
		}
		if item.Spec == nil {
			c.srcDone = true
			c.srcErr = fmt.Errorf("dist: source item %q has no portable spec (use DirSource or FirehoseSource)", item.Name)
			return nil
		}
		if c.opts.Replay != nil {
			if rec, ok := c.opts.Replay.Done[item.Name]; ok {
				if rec.Hash == item.Hash {
					// Checkpointed with matching inputs: folded at
					// replay time, never re-leased.
					continue
				}
				// Stale checkpoint — the inputs changed. Fold the old
				// outcome back out and lease the item afresh.
				c.stats.Reanalyzed++
				c.stats.Apps--
				c.stats.Retried -= rec.Retries
				switch rec.Outcome {
				case eval.OutcomeChecked.String():
					c.stats.Checked--
				case eval.OutcomeDegraded.String():
					c.stats.Degraded--
				case eval.OutcomeFailed.String():
					c.stats.Failed--
				case eval.OutcomeSkipped.String():
					c.stats.Skipped--
				}
				c.stats.Replayed--
				delete(c.done, item.Name)
			}
		}
		return &workItem{name: item.Name, hash: item.Hash, spec: *item.Spec}
	}
	return nil
}

// sweepLocked reclaims expired leases into the pending queue. An
// expired copy of an already-folded app is dropped, not requeued:
// requeueing it would breed a fresh lease for work that is done, and
// when every analysis outlives the TTL (a renewal outage) that cycle
// — expire, requeue, re-lease, expire — never drains and the run
// cannot finish.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.outstanding {
		if now.After(l.deadline) {
			delete(c.outstanding, id)
			c.expired++
			c.opts.Observer.AddCounter("dist-leases-expired", 1)
			if !c.done[l.item.name] {
				c.pending = append(c.pending, l.item)
			}
		}
	}
}

// maybeFinishLocked closes the finish latch once every item is folded.
// When everything in hand is folded but the source has not hit EOF yet,
// it probes for the next item — otherwise a run whose final report
// precedes the EOF-discovering lease request would never learn the
// source is spent. A failed source ends the run as soon as the
// in-flight leases drain — reclaimed pending items can never be leased
// again (handleLease answers 410), so they must not hold the latch
// open.
func (c *Coordinator) maybeFinishLocked() {
	if !c.srcDone && len(c.pending) == 0 && len(c.outstanding) == 0 {
		if item := c.takeLocked(); item != nil {
			c.pending = append(c.pending, item)
		}
	}
	if !c.srcDone || len(c.outstanding) > 0 || c.folding > 0 {
		return
	}
	if len(c.pending) == 0 || c.srcErr != nil {
		c.finishedOnce.Do(func() { close(c.finished) })
	}
}

// renewInterval is how often a renewing worker heartbeats a held
// lease: a third of the TTL, so a lease survives two lost renewals
// before expiring.
func renewInterval(ttl time.Duration) time.Duration {
	iv := ttl / 3
	if iv <= 0 {
		iv = time.Millisecond
	}
	return iv
}

// Expiry-sweep clock bounds. The floor keeps a tiny-TTL test (30ms
// leases) from spinning the sweep goroutine hot; the cap keeps expiry
// latency bounded even under multi-minute TTLs.
const (
	minExpiryTick = 25 * time.Millisecond
	maxExpiryTick = time.Second
)

// expiryTick derives the Wait sweep period from the renewal interval
// (TTL/3), clamped to [minExpiryTick, maxExpiryTick]. Sweeping at the
// renewal cadence means an expired lease is reclaimed at most one
// missed-renewal window late, without tying the sweep clock to the
// TTL's absolute size.
func expiryTick(ttl time.Duration) time.Duration {
	tick := renewInterval(ttl)
	if tick < minExpiryTick {
		tick = minExpiryTick
	}
	if tick > maxExpiryTick {
		tick = maxExpiryTick
	}
	return tick
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/renew", c.handleRenew)
	mux.HandleFunc("/report", c.handleReport)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/config", c.handleConfig)
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		serve.WriteJSON(w, http.StatusOK, StatusResponse{Role: "primary"})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		serve.WriteJSON(w, http.StatusOK, map[string]string{"state": "ok"})
	})
	for i, s := range c.opts.Shards {
		prefix := fmt.Sprintf("/shard/%d", i)
		mux.Handle(prefix+"/artifact/", http.StripPrefix(prefix, longi.NewStoreHandler(s)))
	}
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req LeaseRequest
	if err := serve.DecodeJSON(w, r, 1<<20, &req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	now := time.Now()

	c.mu.Lock()
	c.sweepLocked(now)
	if c.srcErr != nil {
		c.maybeFinishLocked()
		c.mu.Unlock()
		serve.WriteError(w, http.StatusGone, "source failed: "+c.srcErr.Error())
		return
	}
	if len(c.outstanding) >= c.opts.MaxOutstanding {
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent) // backpressure: try again shortly
		return
	}
	item := c.takeLocked()
	if item == nil {
		c.maybeFinishLocked()
		finished := c.srcDone && len(c.pending) == 0 && len(c.outstanding) == 0
		c.mu.Unlock()
		if finished {
			serve.WriteError(w, http.StatusGone, "run complete")
			return
		}
		// In-flight leases may still expire and come back; poll.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.seq++
	id := fmt.Sprintf("lease-%d", c.seq)
	c.outstanding[id] = &lease{worker: req.Worker, item: item, deadline: now.Add(c.opts.LeaseTTL)}
	c.granted++
	c.mu.Unlock()
	c.opts.Observer.AddCounter("dist-leases-granted", 1)

	serve.WriteJSON(w, http.StatusOK, LeaseResponse{
		LeaseID:   id,
		Name:      item.name,
		Hash:      item.hash,
		Spec:      item.spec,
		TTLMillis: c.opts.LeaseTTL.Milliseconds(),
	})
}

// handleRenew extends a live lease's deadline by a full TTL. The sweep
// runs first so a renewal arriving after the deadline cannot revive an
// already-expired lease — by then the item may be reassigned, and two
// live copies of one lease ID would break the reclaim accounting.
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req RenewRequest
	if err := serve.DecodeJSON(w, r, 1<<20, &req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	now := time.Now()

	c.mu.Lock()
	c.sweepLocked(now)
	l, ok := c.outstanding[req.LeaseID]
	if ok {
		l.deadline = now.Add(c.opts.LeaseTTL)
		c.renewals++
	} else {
		c.renewDenied++
	}
	c.mu.Unlock()

	if !ok {
		c.opts.Observer.AddCounter("dist-renewals-denied", 1)
		serve.WriteJSON(w, http.StatusOK, RenewResponse{OK: false})
		return
	}
	c.opts.Observer.AddCounter("dist-lease-renewals", 1)
	serve.WriteJSON(w, http.StatusOK, RenewResponse{
		OK:        true,
		TTLMillis: c.opts.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ReportRequest
	if err := serve.DecodeJSON(w, r, 1<<20, &req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}

	c.mu.Lock()
	l, held := c.outstanding[req.LeaseID]
	if held {
		delete(c.outstanding, req.LeaseID)
	}
	c.reports++
	if c.done[req.Name] {
		// The lease expired, the item was reassigned, and the other
		// copy won the fold. Count it; never double-fold.
		c.duplicates++
		c.maybeFinishLocked()
		c.mu.Unlock()
		c.opts.Observer.AddCounter("dist-duplicate-reports", 1)
		serve.WriteJSON(w, http.StatusOK, ReportResponse{Accepted: false, Duplicate: true})
		return
	}
	if req.Outcome == eval.OutcomeSkipped.String() {
		// The worker abandoned the app (dying context); put the item
		// back so a live worker redoes it — mirroring stream.Run,
		// where skipped apps are never journaled and always
		// re-analyzed on resume.
		if held {
			c.pending = append(c.pending, l.item)
		}
		c.mu.Unlock()
		c.opts.Observer.AddCounter("dist-reports-skipped", 1)
		serve.WriteJSON(w, http.StatusOK, ReportResponse{Accepted: false})
		return
	}
	// Claim the fold under the lock (the dedup point), then journal
	// outside it — Append can fsync, and a sibling report must not
	// block on our disk. The folding count holds the finish latch open
	// until the claimed outcome actually lands in the stats.
	c.done[req.Name] = true
	c.folding++
	// An expired-and-requeued copy may still sit in pending; drop it
	// so it is not analyzed a third time.
	for i, it := range c.pending {
		if it.name == req.Name {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.mu.Unlock()

	var journalErr error
	if c.opts.Journal != nil {
		journalErr = c.opts.Journal.Append(stream.Record{
			App:         req.Name,
			Hash:        req.Hash,
			Outcome:     req.Outcome,
			Retries:     req.Retries,
			Partial:     req.Partial,
			Quarantined: req.Quarantined,
		})
		if journalErr != nil {
			// Same degraded-durability contract as stream.Run: keep
			// folding, surface the loss immediately.
			c.opts.Observer.AddCounter("stream-journal-errors", 1)
		}
	}

	c.mu.Lock()
	c.folding--
	c.stats.Apps++
	c.stats.Retried += req.Retries
	switch req.Outcome {
	case eval.OutcomeChecked.String():
		c.stats.Checked++
	case eval.OutcomeDegraded.String():
		c.stats.Degraded++
	case eval.OutcomeFailed.String():
		c.stats.Failed++
	}
	if req.Quarantined {
		c.stats.Quarantined++
	}
	if req.Exhausted {
		c.stats.RetryExhaustions++
	}
	if journalErr != nil {
		c.stats.JournalErrors++
		if c.journalErr == nil {
			c.journalErr = journalErr
		}
	}
	c.maybeFinishLocked()
	c.mu.Unlock()
	c.opts.Observer.AddCounter("dist-reports-folded", 1)

	serve.WriteJSON(w, http.StatusOK, ReportResponse{Accepted: true})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, c.StatsSnapshot())
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, ConfigResponse{
		Shards:         len(c.opts.Shards),
		LeaseTTLMillis: c.opts.LeaseTTL.Milliseconds(),
	})
}

// StatsSnapshot returns the live accounting (the /stats body).
func (c *Coordinator) StatsSnapshot() StatsResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	byWorker := map[string]int{}
	for _, l := range c.outstanding {
		byWorker[l.worker]++
	}
	done := false
	select {
	case <-c.finished:
		done = true
	default:
	}
	return StatsResponse{
		Done:                done,
		Apps:                c.stats.Apps,
		Checked:             c.stats.Checked,
		Degraded:            c.stats.Degraded,
		Failed:              c.stats.Failed,
		Retried:             c.stats.Retried,
		Skipped:             c.stats.Skipped,
		Replayed:            c.stats.Replayed,
		Reanalyzed:          c.stats.Reanalyzed,
		Granted:             c.granted,
		Reports:             c.reports,
		Expired:             c.expired,
		Duplicates:          c.duplicates,
		Renewals:            c.renewals,
		RenewalsDenied:      c.renewDenied,
		Outstanding:         len(c.outstanding),
		Pending:             len(c.pending),
		OutstandingByWorker: byWorker,
	}
}

// Wait blocks until the run completes (source exhausted, every item
// folded) or ctx dies, then returns the final stats — the same
// stream.Stats a single-process Run over the same source would return,
// bit-identical in its RunStats by the resume/soak contract.
func (c *Coordinator) Wait(ctx context.Context) (stream.Stats, error) {
	// Leases can expire while every worker is gone; sweep on a clock
	// so Wait converges even with no lease traffic to trigger sweeps.
	tick := time.NewTicker(expiryTick(c.opts.LeaseTTL))
	defer tick.Stop()
	for {
		select {
		case <-c.finished:
			return c.finalStats()
		case <-tick.C:
			c.mu.Lock()
			c.sweepLocked(time.Now())
			c.maybeFinishLocked()
			c.mu.Unlock()
		case <-ctx.Done():
			stats, _ := c.finalStats()
			return stats, ctx.Err()
		}
	}
}

func (c *Coordinator) finalStats() (stream.Stats, error) {
	if c.opts.Journal != nil {
		if err := c.opts.Journal.Sync(); err != nil {
			c.mu.Lock()
			if c.journalErr == nil {
				c.journalErr = err
			}
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	stats := c.stats
	srcErr, journalErr := c.srcErr, c.journalErr
	expired, duplicates := c.expired, c.duplicates
	c.mu.Unlock()
	if c.opts.Journal != nil {
		stats.JournalRecords, stats.JournalFsyncs = c.opts.Journal.Stats()
	}
	c.opts.Observer.SetCounter("dist-apps-folded", int64(stats.Apps-stats.Replayed))
	c.opts.Observer.SetCounter("dist-leases-expired-total", expired)
	c.opts.Observer.SetCounter("dist-duplicate-reports-total", duplicates)
	stats.Metrics = c.opts.Observer.Snapshot()
	switch {
	case srcErr != nil:
		return stats, srcErr
	default:
		return stats, journalErr
	}
}
