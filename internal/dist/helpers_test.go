package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ppchecker/internal/stream"
)

// newCoordServer mounts a coordinator's handler on a test server that
// is torn down with the test.
func newCoordServer(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// runWorkerAndWait runs one in-process worker concurrently with the
// coordinator's Wait — so the Wait sweep clock is live while the
// worker holds leases, exactly as in a real deployment — and returns
// both sides' final stats.
func runWorkerAndWait(t *testing.T, c *Coordinator, opts WorkerOptions) (WorkerStats, stream.Stats) {
	t.Helper()
	type workerResult struct {
		ws  WorkerStats
		err error
	}
	resC := make(chan workerResult, 1)
	go func() {
		ws, err := RunWorker(context.Background(), opts)
		resC <- workerResult{ws, err}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res := <-resC
	if res.err != nil {
		t.Fatal(res.err)
	}
	return res.ws, got
}

func postRenew(t *testing.T, url, leaseID, worker string) RenewResponse {
	t.Helper()
	body, _ := json.Marshal(RenewRequest{LeaseID: leaseID, Worker: worker})
	resp, err := http.Post(url+"/renew", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RenewResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

func getStatus(t *testing.T, url string) StatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}
