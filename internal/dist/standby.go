package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ppchecker/internal/serve"
	"ppchecker/internal/stream"
)

// Standby is the failover coordinator. It tails the primary's work
// journal in follower mode — keeping a warm copy of the folded state —
// and serves 503 on the work endpoints until promoted. Promotion
// (POST /promote, Promote(), or automatically when the primary probe
// fails ProbeFailures times in a row) reconstructs the run from the
// journal and starts a fresh Coordinator over a fresh source, which
// then serves leases for exactly the un-journaled remainder.
//
// Promotion state machine (one-way; a promoted standby never demotes):
//
//	FOLLOWER --/promote | probe death--> PROMOTING --> PRIMARY
//
//	FOLLOWER   tail the journal on a ticker; work endpoints 503.
//	PROMOTING  stop following, final tail poll, reopen the journal
//	           authoritatively (OpenJournal replays every intact
//	           record and truncates a torn tail), build Coordinator.
//	PRIMARY    delegate every request to the Coordinator's handler.
//
// Fencing: the journal is single-writer. The operator (or the chaos
// harness) must only promote once the primary is dead — the probe path
// enforces this by requiring consecutive probe failures, and the
// /promote path is for orchestration that already killed the primary.
// Because completed apps are journaled before they are folded, the
// promoted coordinator's replay is exactly the primary's folded state
// at death; apps that were leased but unreported simply get re-leased,
// and first-report-wins dedup absorbs any zombie reports that raced
// the handover.
type Standby struct {
	opts StandbyOptions

	mu      sync.Mutex
	tail    *stream.Tail
	tailErr error
	coord   *Coordinator
	handler http.Handler

	promoted    chan struct{}
	promoteOnce sync.Once
	promoteErr  error
	stop        chan struct{}
	stopOnce    sync.Once
}

// StandbyOptions configure a follower coordinator.
type StandbyOptions struct {
	// JournalPath is the primary's checkpoint journal. The standby
	// needs read access while following and write access at promotion.
	JournalPath string
	// SourceName is the journal header's source identity, passed to
	// OpenJournal at promotion.
	SourceName string
	// JournalOpts are applied when the journal is reopened for append.
	JournalOpts stream.JournalOptions
	// NewSource builds a fresh source at promotion. It must describe
	// the same corpus the primary served (same seed/dir), from the
	// start — the replay skips what the journal already holds.
	NewSource func() stream.Source
	// Coordinator is the options template for the promoted
	// coordinator; Source, Journal and Replay are filled in at
	// promotion.
	Coordinator CoordinatorOptions

	// PrimaryURL, when set, is probed (GET /healthz) every
	// ProbeInterval; ProbeFailures consecutive failures self-promote.
	// Empty disables probing — promotion is then explicit.
	PrimaryURL string
	// ProbeInterval between primary health probes; <= 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeFailures is the consecutive-failure threshold; <= 0 means 3.
	ProbeFailures int
	// TailInterval between journal polls; <= 0 means 250ms.
	TailInterval time.Duration
	// Client probes the primary; nil means a short-timeout client.
	Client *http.Client
}

func (o StandbyOptions) withDefaults() StandbyOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeFailures <= 0 {
		o.ProbeFailures = 3
	}
	if o.TailInterval <= 0 {
		o.TailInterval = 250 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return o
}

// NewStandby starts a follower over the primary's journal.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	opts = opts.withDefaults()
	if opts.JournalPath == "" {
		return nil, errors.New("dist: standby requires a journal path to tail")
	}
	if opts.NewSource == nil {
		return nil, errors.New("dist: standby requires a source factory for promotion")
	}
	s := &Standby{
		opts:     opts,
		tail:     stream.NewTail(opts.JournalPath),
		promoted: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	go s.followLoop()
	return s, nil
}

// followLoop polls the journal (and, when configured, the primary's
// health) until promotion or Stop.
func (s *Standby) followLoop() {
	tailTick := time.NewTicker(s.opts.TailInterval)
	defer tailTick.Stop()
	var probeC <-chan time.Time
	if s.opts.PrimaryURL != "" {
		probeTick := time.NewTicker(s.opts.ProbeInterval)
		defer probeTick.Stop()
		probeC = probeTick.C
	}
	failures := 0
	for {
		select {
		case <-s.stop:
			return
		case <-tailTick.C:
			s.pollTail()
		case <-probeC:
			if s.probePrimary() {
				failures = 0
				continue
			}
			failures++
			if failures >= s.opts.ProbeFailures {
				s.Promote()
				return
			}
		}
	}
}

// pollTail advances the follower replay. The first tail error latches:
// a journal that stops parsing mid-follow is surfaced on /status, and
// promotion ignores the follower copy anyway (OpenJournal re-reads).
func (s *Standby) pollTail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tailErr != nil {
		return
	}
	if _, err := s.tail.Poll(); err != nil {
		s.tailErr = err
	}
}

func (s *Standby) probePrimary() bool {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.opts.PrimaryURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Promote turns the follower into the primary. Idempotent: the first
// call performs the promotion, later calls (and the probe path racing
// an explicit /promote) return its outcome.
func (s *Standby) Promote() error {
	s.promoteOnce.Do(func() {
		s.stopOnce.Do(func() { close(s.stop) })
		s.mu.Lock()
		defer s.mu.Unlock()
		// One last follower poll keeps /status honest, but the
		// authoritative replay comes from OpenJournal below: it re-reads
		// every intact record and truncates a torn tail (a crash
		// mid-append on the primary), which the read-only tail cannot.
		if s.tailErr == nil {
			if _, err := s.tail.Poll(); err != nil {
				s.tailErr = err
			}
		}
		journal, replay, err := stream.OpenJournal(s.opts.JournalPath, s.opts.SourceName, s.opts.JournalOpts)
		if err != nil {
			s.promoteErr = fmt.Errorf("dist: promote: %w", err)
			close(s.promoted)
			return
		}
		copts := s.opts.Coordinator
		copts.Source = s.opts.NewSource()
		copts.Journal = journal
		copts.Replay = replay
		s.coord = NewCoordinator(copts)
		s.handler = s.coord.Handler()
		close(s.promoted)
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoteErr
}

// Stop ends the follow loop without promoting (shutdown of an unused
// standby). No-op after promotion.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Promoted is closed once promotion has completed (successfully or
// not).
func (s *Standby) Promoted() <-chan struct{} { return s.promoted }

// Coordinator returns the promoted coordinator, or nil while following
// (or if promotion failed).
func (s *Standby) Coordinator() *Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// TailedRecords reports the follower replay's app-record count.
func (s *Standby) TailedRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tail.Records()
}

// Wait blocks until promotion, then delegates to the promoted
// coordinator's Wait — so a standby process can be written exactly
// like a primary: mount Handler, Wait, render stats.
func (s *Standby) Wait(ctx context.Context) (stream.Stats, error) {
	select {
	case <-s.promoted:
	case <-ctx.Done():
		return stream.Stats{}, ctx.Err()
	}
	s.mu.Lock()
	coord, err := s.coord, s.promoteErr
	s.mu.Unlock()
	if err != nil {
		return stream.Stats{}, err
	}
	return coord.Wait(ctx)
}

// Handler serves the standby surface: /status, /healthz and /promote
// while following (everything else 503), and the full coordinator
// surface after promotion.
func (s *Standby) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		handler := s.handler
		s.mu.Unlock()
		if handler != nil {
			switch r.URL.Path {
			case "/promote":
				// Idempotent after the fact.
				serve.WriteJSON(w, http.StatusOK, StatusResponse{Role: "primary", Promoted: true})
			case "/status":
				s.writeStatus(w, "primary", true)
			default:
				handler.ServeHTTP(w, r)
			}
			return
		}
		switch r.URL.Path {
		case "/promote":
			if r.Method != http.MethodPost {
				serve.WriteError(w, http.StatusMethodNotAllowed, "POST required")
				return
			}
			if err := s.Promote(); err != nil {
				serve.WriteError(w, http.StatusInternalServerError, err.Error())
				return
			}
			serve.WriteJSON(w, http.StatusOK, StatusResponse{Role: "primary", Promoted: true,
				TailedRecords: s.TailedRecords()})
		case "/healthz":
			serve.WriteJSON(w, http.StatusOK, map[string]string{"state": "standby"})
		case "/status":
			s.writeStatus(w, "standby", false)
		default:
			serve.WriteError(w, http.StatusServiceUnavailable,
				"standby: not primary (POST /promote first)")
		}
	})
}

func (s *Standby) writeStatus(w http.ResponseWriter, role string, promoted bool) {
	s.mu.Lock()
	tailed := s.tail.Records()
	tailErr := ""
	if s.tailErr != nil {
		tailErr = s.tailErr.Error()
	}
	s.mu.Unlock()
	serve.WriteJSON(w, http.StatusOK, StatusResponse{
		Role:          role,
		TailedRecords: tailed,
		TailError:     tailErr,
		Promoted:      promoted,
	})
}
