package dist

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over a fixed endpoint list. Each
// endpoint owns vnodes points on a 64-bit circle; a key maps to the
// endpoint owning the first point at or after the key's hash. The
// properties the distributed cache tier needs:
//
//   - stable: the same key always picks the same endpoint for a given
//     endpoint list, across processes and runs (fnv-1a, no seeding);
//   - balanced: vnodes spread each endpoint around the circle so load
//     splits roughly evenly;
//   - minimal movement: growing the list by one endpoint remaps only
//     the keys that endpoint takes over (~1/n of the space), so a
//     resharded deployment keeps most of its warm cache.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int
}

// DefaultVnodes is the per-endpoint point count — enough for a
// handful-of-shards deployment to balance within a few percent.
const DefaultVnodes = 128

// NewRing builds a ring over endpoints (identified by their string
// form; the returned picks are indexes into this slice). vnodes <= 0
// means DefaultVnodes.
func NewRing(endpoints []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(endpoints)*vnodes)}
	for i, ep := range endpoints {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: fnv64a(ep + "#" + strconv.Itoa(v)),
				idx:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on index so construction order cannot leak into
		// the mapping.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// Pick returns the endpoint index owning key. Empty rings pick -1.
func (r *Ring) Pick(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].idx
}

// fnv64a is the 64-bit FNV-1a hash — endianness-free and dependency-
// free, so every process computes the same ring.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
