package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/eval"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/stream"
)

// WorkerOptions configure one worker process (or in-process worker).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Coordinators is the full coordinator address list — the primary
	// first, standbys after. On a transport error or a not-primary
	// response the worker rotates to the next address with its usual
	// poll backoff, so a promoted standby picks up the fleet without
	// worker restarts. Empty means just Coordinator.
	Coordinators []string
	// Name identifies this worker in leases and /stats.
	Name string
	// Concurrency is how many apps to analyze at once; <= 0 means 1.
	Concurrency int

	// RenewLeases turns on mid-app heartbeats: each held lease is
	// renewed (POST /renew) every TTL/3 until its report is sent, so a
	// slow app no longer needs LeaseTTL sized above the worst case —
	// the TTL becomes a failure detector, not a latency bound. Off, a
	// lease must outlive the whole analysis.
	RenewLeases bool

	// Per-attempt bounds, eval.RunOptions semantics.
	PerAppTimeout   time.Duration
	MaxRetries      int
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	RetryJitter     float64
	// CheckerOptions configure the per-goroutine checkers. Every
	// worker sharing a coordinator must use an equivalent
	// configuration, or the shared remote cache would alias results.
	CheckerOptions []core.CheckerOption
	// Observer instruments the worker's checkers and dist counters.
	Observer *obs.Observer

	// PollInterval is the pause after a 204 (no work yet); <= 0 means
	// 100ms.
	PollInterval time.Duration
	// Client is the HTTP client; nil means a 30s-timeout client.
	Client *http.Client

	// UseRemoteCache turns on the coordinator-hosted analysis-cache
	// tier (read-through over /shard/<i>). Off, every worker computes
	// library-policy analyses locally.
	UseRemoteCache bool
	// CacheNamespace scopes remote cache keys; every worker sharing a
	// shard set must pair the same namespace with the same checker
	// configuration. Empty means "default".
	CacheNamespace string

	// MaxApps, when > 0, stops the worker after that many accepted
	// reports — a test hook for exercising coordinator resume.
	MaxApps int
	// PerAppDelay stretches each analysis (before the pipeline runs) —
	// a test hook so a crash soak can reliably kill a worker while it
	// holds leases.
	PerAppDelay time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.CacheNamespace == "" {
		o.CacheNamespace = "default"
	}
	if len(o.Coordinators) == 0 {
		o.Coordinators = []string{o.Coordinator}
	}
	return o
}

// WorkerStats summarizes one worker's share of a run.
type WorkerStats struct {
	// Leased counts granted leases; Reported counts reports the
	// coordinator accepted and folded.
	Leased   int64
	Reported int64
	// Duplicates counts reports the coordinator rejected because
	// another worker's copy won (this worker raced a reassignment).
	Duplicates int64
	// ReportErrors counts reports lost to transport errors after
	// retries; their leases expire and the apps are reassigned.
	ReportErrors int64
	// RemoteHits / RemoteFails are the shared analysis-cache tier's
	// read-through counters (zero with UseRemoteCache off).
	RemoteHits  int64
	RemoteFails int64
	// Renewals counts accepted lease heartbeats; RenewalsLost counts
	// leases the coordinator stopped tracking mid-app (expired before
	// a heartbeat landed, or lost across a failover) — the worker
	// finishes anyway and lets first-report-wins decide.
	Renewals     int64
	RenewalsLost int64
}

// coordSet is the worker's view of the coordinator address list: an
// immutable URL ring plus the index currently believed primary.
// rotate compare-and-swaps from the failing index so concurrent
// goroutines observing the same failure advance the ring once, not
// once each.
type coordSet struct {
	urls []string
	cur  atomic.Int32
}

func newCoordSet(urls []string) *coordSet { return &coordSet{urls: urls} }

// snapshot returns the current index and its base URL; callers pass
// the index back to rotate on failure.
func (s *coordSet) snapshot() (int32, string) {
	i := s.cur.Load()
	return i, s.urls[i]
}

func (s *coordSet) base() string {
	return s.urls[s.cur.Load()]
}

func (s *coordSet) rotate(from int32) {
	if len(s.urls) > 1 {
		s.cur.CompareAndSwap(from, (from+1)%int32(len(s.urls)))
	}
}

// followerStore is a longi.Store over one hosted shard that always
// addresses the worker's current coordinator, so the remote cache tier
// follows a failover instead of dying with the old primary. Shard
// *identity* (the ring position) is the index i, which both
// coordinators host identically; only the base URL floats.
type followerStore struct {
	set    *coordSet
	shard  int
	client *http.Client
}

func (f followerStore) Get(stage, key string) ([]byte, bool, error) {
	url := fmt.Sprintf("%s/shard/%d", f.set.base(), f.shard)
	return longi.NewHTTPStore(url, f.client).Get(stage, key)
}

func (f followerStore) Put(stage, key string, data []byte) error {
	url := fmt.Sprintf("%s/shard/%d", f.set.base(), f.shard)
	return longi.NewHTTPStore(url, f.client).Put(stage, key, data)
}

// RunWorker pulls leases from a coordinator until the run completes
// (410), the lease budget MaxApps is spent, or ctx dies. It is a thin
// distributed wrapper over eval.CheckApp: the worker holds no corpus
// state, so killing it costs only its outstanding leases.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerStats, error) {
	opts = opts.withDefaults()
	set := newCoordSet(opts.Coordinators)

	// Discover the shard layout. A standby answers /config too, so any
	// address in the list will do; rotate through them on failure (the
	// primary may be mid-failover when the worker starts).
	var cfg ConfigResponse
	var cfgErr error
	for attempt := 0; attempt < 2*len(set.urls); attempt++ {
		idx, base := set.snapshot()
		if cfgErr = getJSON(ctx, opts.Client, base+"/config", &cfg); cfgErr == nil {
			break
		}
		set.rotate(idx)
		if !sleepCtx(ctx, opts.PollInterval) {
			break
		}
	}
	if cfgErr != nil {
		return WorkerStats{}, fmt.Errorf("dist: coordinator config: %w", cfgErr)
	}
	libCache := core.NewAnalysisCache()
	if opts.UseRemoteCache && cfg.Shards > 0 {
		// Shard identity on the ring is the index, not the URL, so the
		// key→shard mapping is stable across a coordinator failover.
		shards := make([]longi.Store, cfg.Shards)
		names := make([]string, cfg.Shards)
		for i := range shards {
			shards[i] = followerStore{set: set, shard: i, client: opts.Client}
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		sharded, err := NewShardedStore(shards, names, opts.Observer)
		if err != nil {
			return WorkerStats{}, err
		}
		libCache = core.NewBackedAnalysisCache(NewBacking(sharded, opts.CacheNamespace))
		// The ESA-interpret tier rides the same shard set under its own
		// stage. The default index is process-global: overlapping
		// RunWorker calls (in-process tests) race benignly — a cleared
		// or swapped backing just degrades to local compute.
		esa.Default().SetVecBacking(NewVecBacking(sharded, opts.CacheNamespace))
		defer esa.Default().SetVecBacking(nil)
	}

	checkerOpts := append(append([]core.CheckerOption{}, opts.CheckerOptions...),
		core.WithSharedAnalysisCache(libCache))
	if opts.Observer != nil {
		checkerOpts = append(checkerOpts, core.WithObserver(opts.Observer))
	}
	checkerOpts = append(checkerOpts, core.WithESAStatScope(esa.NewStatScope()))

	attempt := eval.AttemptOptions{
		Timeout:      opts.PerAppTimeout,
		MaxRetries:   opts.MaxRetries,
		RetryBackoff: opts.RetryBackoff,
		BackoffMax:   opts.RetryBackoffMax,
		Jitter:       opts.RetryJitter,
	}

	var (
		stats    WorkerStats
		accepted atomic.Int64
		resolver = stream.NewSpecResolver()
		wg       sync.WaitGroup
		errMu    sync.Mutex
		loopErr  error
	)
	for g := 0; g < opts.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checker := core.NewChecker(checkerOpts...)
			if err := workerLoop(ctx, opts, set, checker, resolver, attempt, &stats, &accepted); err != nil {
				errMu.Lock()
				if loopErr == nil {
					loopErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()

	if opts.UseRemoteCache {
		stats.RemoteHits, stats.RemoteFails = libCache.BackingStats()
		opts.Observer.SetCounter("dist-cache-remote-hits", stats.RemoteHits)
		opts.Observer.SetCounter("dist-cache-remote-fails", stats.RemoteFails)
	}
	return stats, loopErr
}

// workerLoop is one lease-pull goroutine.
func workerLoop(ctx context.Context, opts WorkerOptions, set *coordSet,
	checker *core.Checker, resolver *stream.SpecResolver, attempt eval.AttemptOptions,
	stats *WorkerStats, accepted *atomic.Int64) error {

	// Renew goroutines for leases this loop holds; waited out on return
	// so none outlive the worker.
	var renewWG sync.WaitGroup
	defer renewWG.Wait()

	netFailures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		if opts.MaxApps > 0 && accepted.Load() >= int64(opts.MaxApps) {
			return nil
		}

		idx, base := set.snapshot()
		lease, status, err := requestLease(ctx, opts, base)
		if err != nil {
			// A coordinator restart, an unpromoted standby (503), or a
			// network blip: rotate the address list, back off and
			// retry; the journal carries the run across the gap. The
			// budget is sized to outlast a probe-driven failover.
			set.rotate(idx)
			netFailures++
			if netFailures >= 200 {
				return fmt.Errorf("dist: coordinator unreachable: %w", err)
			}
			sleepCtx(ctx, opts.PollInterval)
			continue
		}
		netFailures = 0
		switch status {
		case http.StatusGone:
			return nil // run complete
		case http.StatusNoContent:
			sleepCtx(ctx, opts.PollInterval)
			continue
		}

		atomic.AddInt64(&stats.Leased, 1)
		item, err := resolver.Resolve(&lease.Spec)
		if err != nil {
			// Unresolvable spec (e.g. the corpus dir vanished under a
			// dir run): report failed so the run still converges
			// instead of leasing this item forever.
			reportOutcome(ctx, opts, set, stats, accepted, ReportRequest{
				LeaseID: lease.LeaseID, Worker: opts.Name,
				Name: lease.Name, Hash: lease.Hash,
				Outcome: eval.OutcomeFailed.String(),
			})
			continue
		}

		var stopRenew chan struct{}
		if opts.RenewLeases && lease.TTLMillis > 0 {
			stopRenew = make(chan struct{})
			renewWG.Add(1)
			ttl := time.Duration(lease.TTLMillis) * time.Millisecond
			go func(leaseID string) {
				defer renewWG.Done()
				renewLoop(ctx, opts, set, leaseID, ttl, stats, stopRenew)
			}(lease.LeaseID)
		}
		if opts.PerAppDelay > 0 {
			sleepCtx(ctx, opts.PerAppDelay)
		}
		rep, outcome, retries := eval.CheckApp(ctx, checker, item.Name, item.Run, attempt)
		if stopRenew != nil {
			close(stopRenew)
		}
		reportOutcome(ctx, opts, set, stats, accepted, ReportRequest{
			LeaseID: lease.LeaseID, Worker: opts.Name,
			// Report the locally recomputed identity, not the wire
			// copy — the resume contract hashes what was analyzed.
			Name:        item.Name,
			Hash:        item.Hash,
			Outcome:     outcome.String(),
			Retries:     retries,
			Partial:     rep != nil && rep.Partial,
			Quarantined: false,
			Exhausted:   attempt.Exhausted(outcome, rep, retries),
		})
	}
}

// renewLoop heartbeats one held lease every TTL/3 until stopped. A
// transport failure rotates the coordinator list (the primary may be
// gone); an OK:false answer means the lease is no longer tracked —
// renewal stops, the analysis continues, and first-report-wins
// resolves the race.
func renewLoop(ctx context.Context, opts WorkerOptions, set *coordSet,
	leaseID string, ttl time.Duration, stats *WorkerStats, stop <-chan struct{}) {
	tick := time.NewTicker(renewInterval(ttl))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		idx, base := set.snapshot()
		var resp RenewResponse
		err := postJSON(ctx, opts.Client, base+"/renew", RenewRequest{
			LeaseID: leaseID, Worker: opts.Name,
		}, &resp)
		switch {
		case err != nil:
			set.rotate(idx)
		case !resp.OK:
			// A denial racing our own just-sent report is not a lost
			// lease — the report won, the app is folded. Only count the
			// denial when the app is still in flight.
			select {
			case <-stop:
			default:
				atomic.AddInt64(&stats.RenewalsLost, 1)
			}
			return
		default:
			atomic.AddInt64(&stats.Renewals, 1)
		}
	}
}

// reportOutcome delivers one report with bounded transport retries,
// rotating the coordinator list between attempts. A report that cannot
// be delivered is dropped: the lease expires and the app is reanalyzed
// elsewhere, which the dedup map keeps single-fold.
func reportOutcome(ctx context.Context, opts WorkerOptions, set *coordSet,
	stats *WorkerStats, accepted *atomic.Int64, req ReportRequest) {
	// Even when ctx is dying (outcome "skipped"), try to hand the
	// lease back promptly so the coordinator requeues without waiting
	// out the TTL.
	rctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	var resp ReportResponse
	var err error
	for attempt := 0; attempt < 5*len(set.urls); attempt++ {
		idx, base := set.snapshot()
		err = postJSON(rctx, opts.Client, base+"/report", req, &resp)
		if err == nil {
			break
		}
		set.rotate(idx)
		if !sleepCtx(rctx, opts.PollInterval) {
			break
		}
	}
	switch {
	case err != nil:
		atomic.AddInt64(&stats.ReportErrors, 1)
	case resp.Duplicate:
		atomic.AddInt64(&stats.Duplicates, 1)
	case resp.Accepted:
		atomic.AddInt64(&stats.Reported, 1)
		accepted.Add(1)
	}
}

// requestLease POSTs /lease. status is 200 (lease valid), 204 or 410.
func requestLease(ctx context.Context, opts WorkerOptions, base string) (*LeaseResponse, int, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: opts.Name})
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(httpReq)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var lease LeaseResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&lease); err != nil {
			return nil, 0, err
		}
		return &lease, http.StatusOK, nil
	case http.StatusNoContent, http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("dist: lease: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

func postJSON(ctx context.Context, client *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, httpResp.Status, bytes.TrimSpace(data))
	}
	return json.NewDecoder(io.LimitReader(httpResp.Body, 1<<20)).Decode(resp)
}

// sleepCtx pauses for d or until ctx dies; reports whether it slept
// the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
