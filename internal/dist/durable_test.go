package dist

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ppchecker/internal/longi"
	"ppchecker/internal/stream"
)

// dirShards opens the DirStore shard set rooted at root — the same
// layout ppcoord's -shard-dir builds — creating the directories on
// first use and reopening them (warm) on every later call.
func dirShards(t *testing.T, root string, n int) []longi.Store {
	t.Helper()
	stores := make([]longi.Store, n)
	for i := range stores {
		ds, err := longi.NewDirStore(filepath.Join(root, fmt.Sprintf("shard-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = ds
	}
	return stores
}

// countArtifacts walks the shard root and counts stored artifact files.
func countArtifacts(t *testing.T, root string) int {
	t.Helper()
	count := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			count++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return count
}

// runDistOnce runs one coordinator (fresh in-memory state, the given
// shard stores) plus one remote-cache worker to completion and asserts
// bit-identity against want.
func runDistOnce(t *testing.T, seed, n int64, shards []longi.Store, worker string, want stream.Stats) WorkerStats {
	t.Helper()
	c := NewCoordinator(CoordinatorOptions{
		Source: stream.NewFirehoseSource(seed, n),
		Shards: shards,
	})
	srv := newCoordServer(t, c)
	ws, got := runWorkerAndWait(t, c, WorkerOptions{
		Coordinator:    srv.URL,
		Name:           worker,
		Concurrency:    2,
		PollInterval:   5 * time.Millisecond,
		UseRemoteCache: true,
	})
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("%s run %+v != reference %+v", worker, got.RunStats, want.RunStats)
	}
	return ws
}

// TestDirStoreShardsSurviveRestart: a second coordinator over the same
// shard directories starts with the first run's warm caches — the
// rerun reads analyses back instead of recomputing them, and writes
// nothing new (every artifact is content-addressed and already there).
func TestDirStoreShardsSurviveRestart(t *testing.T) {
	const seed, n = 61, 16
	want := referenceRun(t, seed, n)
	root := t.TempDir()

	runDistOnce(t, seed, n, dirShards(t, root, 2), "first", want)
	c1 := countArtifacts(t, root)
	if c1 < 1 {
		t.Fatal("first run stored no artifacts — is the remote tier wired?")
	}

	// "Restart": fresh coordinator, fresh worker caches, same disk.
	ws2 := runDistOnce(t, seed, n, dirShards(t, root, 2), "second", want)
	c2 := countArtifacts(t, root)
	if c2 != c1 {
		t.Fatalf("restart changed the artifact set: %d -> %d files", c1, c2)
	}
	if ws2.RemoteHits < 1 {
		t.Fatal("restarted run never hit the durable cache")
	}
	if ws2.RemoteFails != 0 {
		t.Fatalf("clean artifacts failed to decode: %d remote fails", ws2.RemoteFails)
	}
	t.Logf("restart: %d artifacts on disk, %d remote hits", c2, ws2.RemoteHits)
}

// TestCorruptShardArtifactIsMissNotPoison: every on-disk artifact is
// overwritten with garbage between runs; the rerun must treat each as
// a cache miss — recompute locally, count the failure, and still land
// bit-identical. A corrupt cache may cost time, never correctness.
func TestCorruptShardArtifactIsMissNotPoison(t *testing.T) {
	const seed, n = 63, 12
	want := referenceRun(t, seed, n)
	root := t.TempDir()

	runDistOnce(t, seed, n, dirShards(t, root, 2), "writer", want)
	corrupted := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			if werr := os.WriteFile(path, []byte("corrupt{{{ not json"), 0o644); werr != nil {
				return werr
			}
			corrupted++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted < 1 {
		t.Fatal("nothing to corrupt")
	}

	ws2 := runDistOnce(t, seed, n, dirShards(t, root, 2), "reader", want)
	if ws2.RemoteFails < 1 {
		t.Fatalf("corrupted %d artifacts but the reader counted no remote fails", corrupted)
	}
	if ws2.RemoteHits != 0 {
		t.Fatalf("corrupt artifacts served as hits: %d", ws2.RemoteHits)
	}
}

// TestConcurrentWorkersReadThroughDirShards: two in-process workers
// (four goroutines each side) share one DirStore-backed shard set —
// the read-through path must be race-clean (this package runs under
// -race in CI) and the run bit-identical.
func TestConcurrentWorkersReadThroughDirShards(t *testing.T) {
	const seed, n = 64, 20
	want := referenceRun(t, seed, n)
	root := t.TempDir()

	c := NewCoordinator(CoordinatorOptions{
		Source: stream.NewFirehoseSource(seed, n),
		Shards: dirShards(t, root, 2),
	})
	srv := newCoordServer(t, c)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("racer-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := RunWorker(context.Background(), WorkerOptions{
				Coordinator:    srv.URL,
				Name:           name,
				Concurrency:    2,
				PollInterval:   5 * time.Millisecond,
				UseRemoteCache: true,
			})
			errs <- err
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("concurrent run %+v != reference %+v", got.RunStats, want.RunStats)
	}
	if countArtifacts(t, root) < 1 {
		t.Fatal("no artifacts written through the shared shard set")
	}
}
