package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/longi"
	"ppchecker/internal/stream"
)

func bareStats(s eval.RunStats) eval.RunStats {
	s.Metrics = nil
	return s
}

// referenceRun is the single-process ground truth the distributed tier
// must reproduce bit-identically.
func referenceRun(t *testing.T, seed, n int64) stream.Stats {
	t.Helper()
	want, err := stream.Run(context.Background(), stream.NewFirehoseSource(seed, n), stream.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestCoordinatorBitIdenticalToStreamRun: a coordinator plus two
// in-process workers over a seeded firehose — remote cache tier on —
// produce exactly the RunStats of a single-process stream.Run.
func TestCoordinatorBitIdenticalToStreamRun(t *testing.T) {
	const seed, n = 77, 30
	want := referenceRun(t, seed, n)

	c := NewCoordinator(CoordinatorOptions{
		Source: stream.NewFirehoseSource(seed, n),
		Shards: []longi.Store{longi.NewMemStore(0), longi.NewMemStore(0)},
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	workerErr := make(chan error, 2)
	workerStats := make(chan WorkerStats, 2)
	for i := 0; i < 2; i++ {
		name := []string{"w0", "w1"}[i]
		go func() {
			ws, err := RunWorker(context.Background(), WorkerOptions{
				Coordinator:    srv.URL,
				Name:           name,
				Concurrency:    2,
				PollInterval:   5 * time.Millisecond,
				UseRemoteCache: true,
			})
			workerStats <- ws
			workerErr <- err
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Fatal(err)
		}
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("distributed stats %+v != single-process %+v", got.RunStats, want.RunStats)
	}
	var total int64
	for i := 0; i < 2; i++ {
		ws := <-workerStats
		total += ws.Reported
	}
	if total != n {
		t.Fatalf("workers folded %d apps, want %d", total, n)
	}
	snap := c.StatsSnapshot()
	if !snap.Done || snap.Apps != n || snap.Outstanding != 0 || snap.Pending != 0 {
		t.Fatalf("final snapshot: %+v", snap)
	}
}

func postLease(t *testing.T, url, worker string) (*LeaseResponse, int) {
	t.Helper()
	body, _ := json.Marshal(LeaseRequest{Worker: worker})
	resp, err := http.Post(url+"/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var lease LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	return &lease, http.StatusOK
}

func postReport(t *testing.T, url string, req ReportRequest) ReportResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr ReportResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestLeaseExpiryReassignsAndDeduplicates: a worker that goes silent
// past the TTL loses its lease; the item is re-leased, the second
// report is folded, and the zombie's late report is a counted
// duplicate — never double-folded.
func TestLeaseExpiryReassignsAndDeduplicates(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(5, 1),
		LeaseTTL: 30 * time.Millisecond,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	dead, status := postLease(t, srv.URL, "zombie")
	if status != http.StatusOK {
		t.Fatalf("first lease: status %d", status)
	}
	time.Sleep(60 * time.Millisecond) // let the lease expire

	live, status := postLease(t, srv.URL, "survivor")
	if status != http.StatusOK {
		t.Fatalf("re-lease after expiry: status %d", status)
	}
	if live.Name != dead.Name {
		t.Fatalf("re-leased %q, expired item was %q", live.Name, dead.Name)
	}
	if live.LeaseID == dead.LeaseID {
		t.Fatal("reassignment must mint a fresh lease id")
	}

	if rr := postReport(t, srv.URL, ReportRequest{
		LeaseID: live.LeaseID, Worker: "survivor", Name: live.Name, Hash: live.Hash,
		Outcome: eval.OutcomeChecked.String(),
	}); !rr.Accepted || rr.Duplicate {
		t.Fatalf("survivor report: %+v", rr)
	}
	// The zombie wakes up and reports the same app.
	if rr := postReport(t, srv.URL, ReportRequest{
		LeaseID: dead.LeaseID, Worker: "zombie", Name: dead.Name, Hash: dead.Hash,
		Outcome: eval.OutcomeChecked.String(),
	}); rr.Accepted || !rr.Duplicate {
		t.Fatalf("zombie report: %+v", rr)
	}

	snap := c.StatsSnapshot()
	if snap.Apps != 1 || snap.Expired != 1 || snap.Duplicates != 1 || !snap.Done {
		t.Fatalf("snapshot after duplicate: %+v", snap)
	}
}

// TestSkippedReportRequeues: a worker abandoning an app (dying context)
// hands the lease back; the item is re-leased instead of folded.
func TestSkippedReportRequeues(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Source: stream.NewFirehoseSource(6, 1)})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	lease, _ := postLease(t, srv.URL, "dying")
	if rr := postReport(t, srv.URL, ReportRequest{
		LeaseID: lease.LeaseID, Worker: "dying", Name: lease.Name, Hash: lease.Hash,
		Outcome: eval.OutcomeSkipped.String(),
	}); rr.Accepted {
		t.Fatalf("skip folded: %+v", rr)
	}
	again, status := postLease(t, srv.URL, "fresh")
	if status != http.StatusOK || again.Name != lease.Name {
		t.Fatalf("requeue: status %d lease %+v", status, again)
	}
	if snap := c.StatsSnapshot(); snap.Apps != 0 || snap.Done {
		t.Fatalf("skip must not fold: %+v", snap)
	}
}

// TestCoordinatorJournalResume: kill the coordinator after a partial
// run (worker stops at MaxApps, coordinator discarded); a fresh
// coordinator over the reopened journal leases only the remainder and
// finishes with stats bit-identical to an uninterrupted single-process
// run.
func TestCoordinatorJournalResume(t *testing.T) {
	const seed, n, firstLeg = 21, 14, 6
	want := referenceRun(t, seed, n)
	path := filepath.Join(t.TempDir(), "dist.journal")

	j, replay, err := stream.OpenJournal(path, "dist-test", stream.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCoordinator(CoordinatorOptions{
		Source:  stream.NewFirehoseSource(seed, n),
		Journal: j,
		Replay:  replay,
	})
	srv1 := httptest.NewServer(c1.Handler())
	if _, err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv1.URL, Name: "partial", PollInterval: 5 * time.Millisecond,
		MaxApps: firstLeg,
	}); err != nil {
		t.Fatal(err)
	}
	// Coordinator "dies": server torn down, journal closed, its
	// in-memory state (pending, outstanding, stats) discarded.
	srv1.Close()
	j.Close()

	j2, replay2, err := stream.OpenJournal(path, "dist-test", stream.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if replay2.Records != firstLeg {
		t.Fatalf("recovered %d records, want %d", replay2.Records, firstLeg)
	}
	c2 := NewCoordinator(CoordinatorOptions{
		Source:  stream.NewFirehoseSource(seed, n),
		Journal: j2,
		Replay:  replay2,
	})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	if _, err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv2.URL, Name: "finisher", PollInterval: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("resumed stats %+v != uninterrupted %+v", got.RunStats, want.RunStats)
	}
	if got.Replayed != firstLeg {
		t.Fatalf("Replayed = %d, want %d", got.Replayed, firstLeg)
	}
	// The healed journal holds the full corpus exactly once.
	j2.Close()
	_, replay3, err := stream.OpenJournal(path, "dist-test", stream.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay3.Records != n || replay3.Duplicates != 0 {
		t.Fatalf("final journal: %+v", replay3)
	}
}

// emptySource is a source with nothing in it (firehose cap 0 means
// endless, not empty).
type emptySource struct{}

func (emptySource) Next(context.Context) (*stream.Item, error) { return nil, io.EOF }

// TestEmptySourceFinishesImmediately: a coordinator over a zero-item
// source reports done without a single lease request.
func TestEmptySourceFinishesImmediately(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Source: emptySource{}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := c.Wait(ctx)
	if err != nil || stats.Apps != 0 {
		t.Fatalf("empty run: stats=%+v err=%v", stats, err)
	}
}
