package dist

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
)

// shardFixture spins up n HTTP shards over in-memory stores, the same
// wiring the coordinator's /shard/<i> endpoints use.
func shardFixture(t *testing.T, n int) (*ShardedStore, []*httptest.Server, *obs.Observer) {
	t.Helper()
	observer := obs.New()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewServer(longi.NewStoreHandler(longi.NewMemStore(0)))
		t.Cleanup(servers[i].Close)
		urls[i] = servers[i].URL
	}
	s, err := NewHTTPShardedStore(urls, servers[0].Client(), observer)
	if err != nil {
		t.Fatal(err)
	}
	return s, servers, observer
}

// hexKeys returns store-valid artifact keys (longi keys are lowercase
// hex digests).
func hexKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%08x", uint32(i)*2654435761)
	}
	return keys
}

// TestShardedStoreRoundTrip: puts land on a consistent shard and come
// back on Get, across many keys and all shards.
func TestShardedStoreRoundTrip(t *testing.T) {
	s, _, observer := shardFixture(t, 3)
	keys := hexKeys(40)
	for i, k := range keys {
		if err := s.Put("stage-a", k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		data, hit, err := s.Get("stage-a", k)
		if err != nil || !hit || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("get %q = %v hit=%v err=%v", k, data, hit, err)
		}
	}
	if _, hit, _ := s.Get("stage-b", keys[0]); hit {
		t.Fatal("stages must not alias")
	}
	if hits, _ := observer.Snapshot().Counter("dist-shard-hits"); hits != int64(len(keys)) {
		t.Fatalf("hits counter = %d", hits)
	}
}

// TestShardedStoreDeadShardDegrades: killing a shard turns its keys
// into misses and swallowed puts — never errors — and the error counter
// records the degradation.
func TestShardedStoreDeadShardDegrades(t *testing.T) {
	s, servers, observer := shardFixture(t, 2)
	for _, srv := range servers {
		srv.Close()
	}
	if _, hit, err := s.Get("stage", "k"); hit || err != nil {
		t.Fatalf("dead shard get: hit=%v err=%v (want miss, nil)", hit, err)
	}
	if err := s.Put("stage", "k", []byte("v")); err != nil {
		t.Fatalf("dead shard put: %v (want nil)", err)
	}
	if errs, _ := observer.Snapshot().Counter("dist-shard-errors"); errs != 2 {
		t.Fatalf("error counter = %d, want 2", errs)
	}
}

// TestBackingOverDeadShardsFallsBackToCompute: the full worker-side
// stack — AnalysisCache over Backing over ShardedStore — survives a
// dead shard tier by computing locally.
func TestBackingOverDeadShardsFallsBackToCompute(t *testing.T) {
	s, servers, _ := shardFixture(t, 2)
	for _, srv := range servers {
		srv.Close()
	}
	cache := core.NewBackedAnalysisCache(NewBacking(s, "test-ns"))
	computes := 0
	got, cached := cache.Get("some policy text", func() *policy.Analysis {
		computes++
		return &policy.Analysis{Collect: []string{"location"}}
	})
	if cached || computes != 1 || got == nil || len(got.Collect) != 1 {
		t.Fatalf("dead tier: cached=%v computes=%d got=%+v", cached, computes, got)
	}
}

// TestBackingNamespacesDoNotAlias: the same policy text under two
// namespaces (two checker configurations) occupies distinct keys.
func TestBackingNamespacesDoNotAlias(t *testing.T) {
	store := longi.NewMemStore(0)
	a := NewBacking(store, "config-a")
	b := NewBacking(store, "config-b")
	a.Store("text", []byte("analysis-a"))
	if _, hit := b.Load("text"); hit {
		t.Fatal("namespaces alias")
	}
	if data, hit := a.Load("text"); !hit || string(data) != "analysis-a" {
		t.Fatalf("own namespace: hit=%v data=%q", hit, data)
	}
}
