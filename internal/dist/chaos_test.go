package dist

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"ppchecker/internal/longi"
	"ppchecker/internal/stream"
)

// The chaos suite is the distributed tier's randomized proving ground:
// every scenario injects one fault class — worker SIGKILL, worker
// freeze (SIGSTOP past the TTL), dropped renewals, coordinator death
// plus standby promotion, or no fault at all — over a seeded firehose,
// and holds the same two invariants every time:
//
//  1. the final RunStats are bit-identical to a single-process
//     stream.Run over the same seed, and
//  2. the checkpoint journal holds every app exactly once.
//
// Scenario parameters (corpus size, TTL, renewal on/off, durable vs
// in-memory shards, promotion mode) are drawn from a fixed-seed RNG, so
// a failure reproduces by scenario name. Fault classes are assigned
// round-robin with failover and renewal-drop first, so even the -short
// subset exercises at least one of each.

const (
	chaosChildEnv  = "DIST_CHAOS_CHILD"
	chaosCoordsEnv = "DIST_CHAOS_COORDS"
	chaosNameEnv   = "DIST_CHAOS_NAME"
	chaosDelayEnv  = "DIST_CHAOS_DELAY_MS"
	chaosRenewEnv  = "DIST_CHAOS_RENEW"
)

// renewDroppingTransport eats every renewal on the floor — the lease
// heartbeats are sent and never arrive, as under a one-way partition.
type renewDroppingTransport struct {
	base http.RoundTripper
}

func (tr renewDroppingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/renew") {
		return nil, fmt.Errorf("chaos: renewal dropped")
	}
	return tr.base.RoundTrip(r)
}

// TestDistChaosWorkerChild is the re-exec target for the kill and
// pause scenarios: one worker process under the parent's signals. It
// skips unless spawned by the chaos suite.
func TestDistChaosWorkerChild(t *testing.T) {
	if os.Getenv(chaosChildEnv) != "1" {
		t.Skip("chaos child; only runs re-exec'd")
	}
	delayMS, _ := strconv.Atoi(os.Getenv(chaosDelayEnv))
	coords := strings.Split(os.Getenv(chaosCoordsEnv), ",")
	if _, err := RunWorker(context.Background(), WorkerOptions{
		Coordinator:    coords[0],
		Coordinators:   coords,
		Name:           os.Getenv(chaosNameEnv),
		Concurrency:    2,
		PollInterval:   10 * time.Millisecond,
		PerAppDelay:    time.Duration(delayMS) * time.Millisecond,
		RenewLeases:    os.Getenv(chaosRenewEnv) == "1",
		UseRemoteCache: true,
	}); err != nil {
		t.Fatal(err)
	}
}

type chaosScenario struct {
	idx     int
	fault   string // kill | pause | drop-renew | failover | none
	seed    int64
	n       int64
	ttl     time.Duration
	delay   time.Duration
	renew   bool
	durable bool // DirStore shards instead of MemStore
	probe   bool // failover: probe-driven self-promotion vs POST /promote
}

func chaosScenarios(count int) []chaosScenario {
	// Failover and renewal-drop lead the rotation so every suite size —
	// including -short — runs at least one of each.
	faults := []string{"failover", "drop-renew", "kill", "pause", "none"}
	rng := rand.New(rand.NewSource(20260807))
	scenarios := make([]chaosScenario, count)
	for i := range scenarios {
		sc := chaosScenario{
			idx:     i,
			fault:   faults[i%len(faults)],
			seed:    1000 + int64(i),
			n:       int64(8 + rng.Intn(9)),
			renew:   rng.Intn(2) == 0,
			durable: rng.Intn(2) == 0,
			probe:   rng.Intn(2) == 0,
		}
		switch sc.fault {
		case "kill", "pause":
			// The TTL must comfortably outlive one app (100ms) so only
			// the fault, not slowness, expires leases.
			sc.ttl = time.Duration(400+rng.Intn(300)) * time.Millisecond
			sc.delay = 100 * time.Millisecond
		case "drop-renew":
			// Renewal on, heartbeats dropped, analysis longer than the
			// TTL: every lease must expire exactly as if renewal were
			// off, and first-report-wins keeps the fold exact.
			sc.renew = true
			sc.n = int64(6 + rng.Intn(5))
			sc.ttl = time.Duration(200+rng.Intn(100)) * time.Millisecond
			sc.delay = sc.ttl + time.Duration(150+rng.Intn(100))*time.Millisecond
		case "failover":
			sc.ttl = time.Duration(500+rng.Intn(300)) * time.Millisecond
			sc.delay = 60 * time.Millisecond
		case "none":
			sc.ttl = 1500 * time.Millisecond
			sc.delay = time.Duration(rng.Intn(30)) * time.Millisecond
		}
		scenarios[i] = sc
	}
	return scenarios
}

func TestDistChaosSuite(t *testing.T) {
	count := 25
	if testing.Short() {
		count = 6
	}
	if os.Getenv("CHAOS_FULL") == "1" {
		count = 60
	}
	for _, sc := range chaosScenarios(count) {
		sc := sc
		name := fmt.Sprintf("%02d-%s", sc.idx, sc.fault)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runChaosScenario(t, sc)
		})
	}
}

func runChaosScenario(t *testing.T, sc chaosScenario) {
	want := referenceRun(t, sc.seed, sc.n)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "chaos.journal")
	newShards := func() []longi.Store {
		if sc.durable {
			return dirShards(t, filepath.Join(dir, "shards"), 2)
		}
		return []longi.Store{longi.NewMemStore(0), longi.NewMemStore(0)}
	}

	j, replay, err := stream.OpenJournal(journalPath, "chaos", stream.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(sc.seed, sc.n),
		Journal:  j,
		Replay:   replay,
		LeaseTTL: sc.ttl,
		Shards:   newShards(),
	})
	// A plain listener (not httptest) so child processes can reach it
	// and the failover scenario can kill it abruptly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	primaryURL := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var got stream.Stats
	var snap StatsResponse
	switch sc.fault {
	case "kill", "pause":
		got, snap = chaosChildScenario(ctx, t, sc, c, primaryURL)
	case "failover":
		got, snap = chaosFailoverScenario(ctx, t, sc, c, srv, j, primaryURL, journalPath, newShards)
	default:
		got, snap = chaosInProcessScenario(ctx, t, sc, c, primaryURL)
	}

	// Invariant 1: bit-identical RunStats, whatever the fault did.
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("chaos stats %+v != single-process %+v (snapshot %+v)",
			got.RunStats, want.RunStats, snap)
	}
	// Fault-specific evidence that the fault actually landed.
	switch sc.fault {
	case "kill", "pause":
		if snap.Expired < 1 {
			t.Fatalf("%s cost no leases — the victim idled through the fault: %+v", sc.fault, snap)
		}
	case "drop-renew":
		if snap.Renewals != 0 {
			t.Fatalf("renewals got through the dropping transport: %+v", snap)
		}
		if snap.Expired < 1 {
			t.Fatalf("dropped renewals expired no leases: %+v", snap)
		}
	}

	// Invariant 2: the journal holds every app exactly once. Read back
	// through a fresh tail — read-only, so it cannot heal anything.
	tail := stream.NewTail(journalPath)
	if _, err := tail.Poll(); err != nil {
		t.Fatal(err)
	}
	if r := tail.Replay(); r.Records != int(sc.n) || r.Duplicates != 0 {
		t.Fatalf("journal accounting: records=%d duplicates=%d, want %d/0",
			r.Records, r.Duplicates, sc.n)
	}
}

// chaosInProcessScenario runs the none and drop-renew faults with two
// in-process workers (the fault, if any, lives in the HTTP transport).
func chaosInProcessScenario(ctx context.Context, t *testing.T, sc chaosScenario,
	c *Coordinator, url string) (stream.Stats, StatsResponse) {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	if sc.fault == "drop-renew" {
		client.Transport = renewDroppingTransport{base: http.DefaultTransport}
	}
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("chaos-w%d", i)
		go func() {
			_, err := RunWorker(ctx, WorkerOptions{
				Coordinator:    url,
				Name:           name,
				Concurrency:    2,
				PollInterval:   5 * time.Millisecond,
				PerAppDelay:    sc.delay,
				RenewLeases:    sc.renew,
				UseRemoteCache: true,
				Client:         client,
			})
			workerErr <- err
		}()
	}
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v (snapshot %+v)", err, c.StatsSnapshot())
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Fatal(err)
		}
	}
	return got, c.StatsSnapshot()
}

// chaosChildScenario runs the kill and pause faults against real child
// processes, so the fault is a real signal with no in-process cleanup.
func chaosChildScenario(ctx context.Context, t *testing.T, sc chaosScenario,
	c *Coordinator, url string) (stream.Stats, StatsResponse) {
	t.Helper()
	spawn := func(name string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0], "-test.run=^TestDistChaosWorkerChild$", "-test.v")
		renew := "0"
		if sc.renew {
			renew = "1"
		}
		cmd.Env = append(os.Environ(),
			chaosChildEnv+"=1",
			chaosCoordsEnv+"="+url,
			chaosNameEnv+"="+name,
			chaosDelayEnv+"="+strconv.Itoa(int(sc.delay/time.Millisecond)),
			chaosRenewEnv+"="+renew,
		)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, &out
	}
	victim, victimOut := spawn("victim")
	survivor, survivorOut := spawn("survivor")
	defer func() {
		victim.Process.Kill()
		survivor.Process.Kill()
	}()

	// Strike only once /stats proves the victim holds live leases.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("victim never held a lease; victim:\n%s\nsurvivor:\n%s",
				victimOut.String(), survivorOut.String())
		}
		if pollStats(t, url).OutstandingByWorker["victim"] > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	switch sc.fault {
	case "kill":
		if err := victim.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		victim.Wait() // killed; exit status is expected to be non-zero
	case "pause":
		// Freeze the victim past the TTL: held leases expire exactly as
		// if it died, then it thaws, finishes, and its late reports must
		// be absorbed as duplicates.
		if err := victim.Process.Signal(syscall.SIGSTOP); err != nil {
			t.Fatal(err)
		}
		time.Sleep(sc.ttl + 300*time.Millisecond)
		if err := victim.Process.Signal(syscall.SIGCONT); err != nil {
			t.Fatal(err)
		}
	}

	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v\nsurvivor:\n%s", err, survivorOut.String())
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor exit: %v\n%s", err, survivorOut.String())
	}
	if sc.fault == "pause" {
		if err := victim.Wait(); err != nil {
			t.Fatalf("thawed victim exit: %v\n%s", err, victimOut.String())
		}
	}
	return got, c.StatsSnapshot()
}

// chaosFailoverScenario kills the primary mid-run and finishes under a
// promoted standby, with the workers rotating across the address list
// on their own.
func chaosFailoverScenario(ctx context.Context, t *testing.T, sc chaosScenario,
	c *Coordinator, srv *http.Server, j *stream.Journal,
	primaryURL, journalPath string, newShards func() []longi.Store) (stream.Stats, StatsResponse) {
	t.Helper()
	opts := StandbyOptions{
		JournalPath:  journalPath,
		SourceName:   "chaos",
		JournalOpts:  stream.JournalOptions{FsyncEvery: 1},
		NewSource:    func() stream.Source { return stream.NewFirehoseSource(sc.seed, sc.n) },
		Coordinator:  CoordinatorOptions{LeaseTTL: sc.ttl, Shards: newShards()},
		TailInterval: 10 * time.Millisecond,
	}
	if sc.probe {
		opts.PrimaryURL = primaryURL
		opts.ProbeInterval = 40 * time.Millisecond
		opts.ProbeFailures = 2
	}
	s, err := NewStandby(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	srv2 := httptest.NewServer(s.Handler())
	t.Cleanup(srv2.Close)
	coords := []string{primaryURL, srv2.URL}

	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("chaos-w%d", i)
		go func() {
			_, err := RunWorker(ctx, WorkerOptions{
				Coordinator:    coords[0],
				Coordinators:   coords,
				Name:           name,
				Concurrency:    2,
				PollInterval:   5 * time.Millisecond,
				PerAppDelay:    sc.delay,
				RenewLeases:    sc.renew,
				UseRemoteCache: true,
			})
			workerErr <- err
		}()
	}

	// Let the primary fold real progress before dying, so promotion has
	// journaled state to resume from.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("primary made no progress before the failover window")
		}
		if pollStats(t, primaryURL).Apps >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The primary dies: listener torn down mid-traffic, journal closed,
	// in-memory lease and fold state discarded.
	srv.Close()
	j.Close()

	if !sc.probe {
		resp, err := http.Post(srv2.URL+"/promote", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /promote: %d", resp.StatusCode)
		}
	}
	select {
	case <-s.Promoted():
	case <-time.After(30 * time.Second):
		t.Fatal("standby never promoted")
	}

	got, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErr; err != nil {
			t.Fatal(err)
		}
	}
	return got, s.Coordinator().StatsSnapshot()
}
