package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ppchecker/internal/stream"
)

// newStandbyServer mounts a standby's handler and tears both down with
// the test.
func newStandbyServer(t *testing.T, s *Standby) *httptest.Server {
	t.Helper()
	t.Cleanup(s.Stop)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestStandbyServes503UntilPromoted: before promotion the work
// endpoints refuse, while /healthz, /status and /config answer so
// workers and probes can talk to an unpromoted follower.
func TestStandbyServes503UntilPromoted(t *testing.T) {
	s, err := NewStandby(StandbyOptions{
		JournalPath: filepath.Join(t.TempDir(), "s.journal"),
		SourceName:  "standby-test",
		NewSource:   func() stream.Source { return stream.NewFirehoseSource(1, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newStandbyServer(t, s)

	if _, status := postLease(t, srv.URL, "early"); status != http.StatusServiceUnavailable {
		t.Fatalf("pre-promotion lease: status %d, want 503", status)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standby /healthz: %d", resp.StatusCode)
	}
	if st := getStatus(t, srv.URL); st.Role != "standby" || st.Promoted {
		t.Fatalf("pre-promotion status: %+v", st)
	}
	// /promote is POST-only.
	resp, err = http.Get(srv.URL + "/promote")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /promote: %d, want 405", resp.StatusCode)
	}
}

// TestStandbyPromotionResumesBitIdentical is the failover headline: a
// primary journals part of the run and dies; the tailing standby is
// promoted by POST /promote, reconstructs the folded state from the
// journal, serves the remainder to a worker that rotates across the
// address list, and finishes with RunStats bit-identical to an
// uninterrupted single-process run.
func TestStandbyPromotionResumesBitIdentical(t *testing.T) {
	const seed, n, firstLeg = 83, 14, 6
	want := referenceRun(t, seed, n)
	path := filepath.Join(t.TempDir(), "failover.journal")

	j, replay, err := stream.OpenJournal(path, "dist-test", stream.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	primary := NewCoordinator(CoordinatorOptions{
		Source:  stream.NewFirehoseSource(seed, n),
		Journal: j,
		Replay:  replay,
	})
	srv1 := httptest.NewServer(primary.Handler())

	s, err := NewStandby(StandbyOptions{
		JournalPath:  path,
		SourceName:   "dist-test",
		JournalOpts:  stream.JournalOptions{FsyncEvery: 1},
		NewSource:    func() stream.Source { return stream.NewFirehoseSource(seed, n) },
		TailInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newStandbyServer(t, s)
	coords := []string{srv1.URL, srv2.URL}

	// First leg against the primary; the standby follows along.
	if _, err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: coords[0], Coordinators: coords,
		Name: "first-leg", PollInterval: 5 * time.Millisecond,
		MaxApps: firstLeg, RenewLeases: true,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.TailedRecords() < firstLeg {
		if time.Now().After(deadline) {
			t.Fatalf("standby tailed %d records, want %d", s.TailedRecords(), firstLeg)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The primary dies: server gone, journal closed, state discarded.
	srv1.Close()
	j.Close()

	// Orchestrated promotion.
	resp, err := http.Post(srv2.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /promote: %d", resp.StatusCode)
	}
	if st := getStatus(t, srv2.URL); st.Role != "primary" || !st.Promoted {
		t.Fatalf("post-promotion status: %+v", st)
	}

	// The second worker starts at the dead primary and must rotate to
	// the promoted standby on its own.
	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), WorkerOptions{
			Coordinator: coords[0], Coordinators: coords,
			Name: "second-leg", PollInterval: 5 * time.Millisecond,
			RenewLeases: true,
		})
		workerErr <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workerErr; err != nil {
		t.Fatal(err)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("failover run %+v != uninterrupted %+v", got.RunStats, want.RunStats)
	}
	if got.Replayed != firstLeg {
		t.Fatalf("promoted coordinator replayed %d, want %d", got.Replayed, firstLeg)
	}

	// The journal holds the whole corpus exactly once across both
	// reigns: read it back through a fresh tail.
	tail := stream.NewTail(path)
	if _, err := tail.Poll(); err != nil {
		t.Fatal(err)
	}
	if r := tail.Replay(); r.Records != n || r.Duplicates != 0 {
		t.Fatalf("final journal: records=%d duplicates=%d", r.Records, r.Duplicates)
	}
}

// TestStandbyProbeSelfPromotes: with PrimaryURL set, the standby
// notices the primary's death through failed health probes and
// promotes itself — no orchestrator in the loop — then completes the
// run.
func TestStandbyProbeSelfPromotes(t *testing.T) {
	const seed, n = 7, 3
	want := referenceRun(t, seed, n)
	path := filepath.Join(t.TempDir(), "probe.journal")

	primary := NewCoordinator(CoordinatorOptions{Source: stream.NewFirehoseSource(seed, n)})
	srv1 := httptest.NewServer(primary.Handler())

	s, err := NewStandby(StandbyOptions{
		JournalPath:   path,
		SourceName:    "probe-test",
		NewSource:     func() stream.Source { return stream.NewFirehoseSource(seed, n) },
		PrimaryURL:    srv1.URL,
		ProbeInterval: 30 * time.Millisecond,
		ProbeFailures: 2,
		TailInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newStandbyServer(t, s)

	// While the primary answers probes, the standby must hold.
	select {
	case <-s.Promoted():
		t.Fatal("standby promoted itself under a healthy primary")
	case <-time.After(200 * time.Millisecond):
	}

	srv1.Close() // probes start failing
	select {
	case <-s.Promoted():
	case <-time.After(5 * time.Second):
		t.Fatal("standby never self-promoted after primary death")
	}
	if err := s.Promote(); err != nil { // idempotent, reports outcome
		t.Fatal(err)
	}

	// The promoted standby serves the whole run (the dead primary
	// journaled nothing).
	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), WorkerOptions{
			Coordinator: srv2.URL, Name: "post-failover",
			PollInterval: 5 * time.Millisecond,
		})
		workerErr <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workerErr; err != nil {
		t.Fatal(err)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("self-promoted run %+v != reference %+v", got.RunStats, want.RunStats)
	}
}
