package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ppchecker/internal/longi"
	"ppchecker/internal/stream"
)

const (
	distChildEnv   = "DIST_CRASH_CHILD"
	distCoordEnv   = "DIST_CRASH_COORD"
	distNameEnv    = "DIST_CRASH_NAME"
	distDelayEnv   = "DIST_CRASH_DELAY_MS"
	distMaxAppsEnv = "DIST_CRASH_MAX_APPS"
)

// TestDistWorkerChild is the re-exec target for the soak: one worker
// process pulling from the coordinator the parent points it at, slowed
// per app so the parent's SIGKILL reliably lands while it holds leases.
// It skips unless spawned by TestDistCrashSoakBitIdentical.
func TestDistWorkerChild(t *testing.T) {
	if os.Getenv(distChildEnv) != "1" {
		t.Skip("dist-soak child; only runs re-exec'd")
	}
	delayMS, _ := strconv.Atoi(os.Getenv(distDelayEnv))
	maxApps, _ := strconv.Atoi(os.Getenv(distMaxAppsEnv))
	if _, err := RunWorker(context.Background(), WorkerOptions{
		Coordinator:    os.Getenv(distCoordEnv),
		Name:           os.Getenv(distNameEnv),
		Concurrency:    2,
		PollInterval:   10 * time.Millisecond,
		PerAppDelay:    time.Duration(delayMS) * time.Millisecond,
		UseRemoteCache: true,
		MaxApps:        maxApps,
	}); err != nil {
		t.Fatal(err)
	}
}

func pollStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestDistCrashSoakBitIdentical is the distributed tier's headline
// guarantee: a coordinator plus two worker processes over a seeded
// firehose — one worker SIGKILLed while it provably holds leases —
// still converges, via lease expiry and reassignment to the survivor,
// to RunStats bit-identical to a single-process stream.Run, with every
// app journaled exactly once.
func TestDistCrashSoakBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const seed, n = 41, 36
	want := referenceRun(t, seed, n)

	path := filepath.Join(t.TempDir(), "dist.journal")
	j, replay, err := stream.OpenJournal(path, "dist-soak", stream.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := NewCoordinator(CoordinatorOptions{
		Source:   stream.NewFirehoseSource(seed, n),
		Journal:  j,
		Replay:   replay,
		LeaseTTL: 1500 * time.Millisecond,
		Shards:   []longi.Store{longi.NewMemStore(0), longi.NewMemStore(0)},
	})
	srv := &http.Server{Handler: c.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	coordURL := "http://" + ln.Addr().String()

	spawn := func(name string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0], "-test.run=^TestDistWorkerChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			distChildEnv+"=1",
			distCoordEnv+"="+coordURL,
			distNameEnv+"="+name,
			distDelayEnv+"=100",
		)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, &out
	}
	victim, victimOut := spawn("victim")
	survivor, survivorOut := spawn("survivor")
	defer func() {
		victim.Process.Kill()
		survivor.Process.Kill()
	}()

	// Kill the victim only once /stats proves it holds live leases —
	// the kill must cost the run real in-flight work, not an idle poll
	// loop.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("victim never held a lease; victim:\n%s\nsurvivor:\n%s",
				victimOut.String(), survivorOut.String())
		}
		if snap := pollStats(t, coordURL); snap.OutstandingByWorker["victim"] > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	victim.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v\nsurvivor:\n%s", err, survivorOut.String())
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor exit: %v\n%s", err, survivorOut.String())
	}

	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("soak stats %+v != single-process %+v", got.RunStats, want.RunStats)
	}
	snap := c.StatsSnapshot()
	if snap.Expired < 1 {
		t.Fatalf("kill cost no leases (expired=%d) — the victim died idle", snap.Expired)
	}
	t.Logf("victim died holding work: %d leases expired, %d duplicates, %d reports",
		snap.Expired, snap.Duplicates, snap.Reports)

	// The journal holds the full corpus exactly once: expiry and
	// reassignment never double-journaled an app.
	j.Close()
	_, replay2, err := stream.OpenJournal(path, "dist-soak", stream.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Records != n || replay2.Duplicates != 0 {
		t.Fatalf("final journal: %+v", replay2)
	}
}
