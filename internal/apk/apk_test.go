package apk

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"ppchecker/internal/dex"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Package: "com.example.app",
		Permissions: []Permission{
			{Name: "android.permission.ACCESS_FINE_LOCATION"},
			{Name: "android.permission.READ_CONTACTS"},
		},
		Application: Application{
			Activities: []Component{{
				Name:     "com.example.app.MainActivity",
				Exported: true,
				Filters: []IntentFilter{{
					Actions: []Action{{Name: "android.intent.action.MAIN"}},
				}},
			}},
			Services: []Component{{Name: "com.example.app.SyncService"}},
		},
	}
}

func sampleDex(t *testing.T) *dex.Dex {
	t.Helper()
	d, err := dex.Assemble(`
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	data, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Package != m.Package {
		t.Fatalf("package = %q", m2.Package)
	}
	if !m2.HasPermission("android.permission.READ_CONTACTS") {
		t.Fatal("permission lost")
	}
	if len(m2.Components()) != 2 {
		t.Fatalf("components = %+v", m2.Components())
	}
	if m2.Application.Activities[0].Filters[0].Actions[0].Name != "android.intent.action.MAIN" {
		t.Fatal("intent filter lost")
	}
}

func TestDecodeManifestRejectsEmptyPackage(t *testing.T) {
	if _, err := DecodeManifest([]byte(`<manifest></manifest>`)); err == nil {
		t.Fatal("manifest without package accepted")
	}
	if _, err := DecodeManifest([]byte(`not xml`)); err == nil {
		t.Fatal("non-XML accepted")
	}
}

func TestAPKRoundTrip(t *testing.T) {
	a := New(sampleManifest(), sampleDex(t))
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Manifest.Package != "com.example.app" {
		t.Fatalf("package = %q", a2.Manifest.Package)
	}
	if a2.Packed {
		t.Fatal("unpacked APK reported packed")
	}
	if a2.Dex.Class("Lcom/example/app/MainActivity;") == nil {
		t.Fatal("dex lost")
	}
}

func TestPackedAPKRoundTrip(t *testing.T) {
	a := New(sampleManifest(), sampleDex(t))
	a.Packed = true
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized container must not contain the dex in clear form.
	if bytes.Contains(data, dex.Encode(a.Dex)) {
		t.Fatal("packed APK contains cleartext dex")
	}
	a2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Packed {
		t.Fatal("packed flag not recovered")
	}
	if !reflect.DeepEqual(dex.Encode(a.Dex), dex.Encode(a2.Dex)) {
		t.Fatal("unpacked dex differs from original")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	a := New(sampleManifest(), sampleDex(t))
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:2]); err == nil {
		t.Error("short input accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'Z'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated container accepted")
	}
}

// TestXORCipherProperty: the cipher is its own inverse for any payload.
func TestXORCipherProperty(t *testing.T) {
	f := func(payload []byte, pkgSeed uint32) bool {
		key := packKey(string(rune('a'+pkgSeed%26)) + ".example")
		return bytes.Equal(xorCipher(xorCipher(payload, key), key), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPackKeyDistinct: different packages get different keys.
func TestPackKeyDistinct(t *testing.T) {
	k1 := packKey("com.example.one")
	k2 := packKey("com.example.two")
	if bytes.Equal(k1, k2) {
		t.Fatal("keys collide")
	}
}

func TestKeyFromStubErrors(t *testing.T) {
	if _, err := keyFromStub([]byte("BAD!")); err == nil {
		t.Error("bad stub accepted")
	}
	if _, err := keyFromStub([]byte("STUB\x10short")); err == nil {
		t.Error("truncated stub accepted")
	}
}

// TestDecodeRandomBytesNeverPanics: hostile container bytes produce
// errors, not panics.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeBitFlips: flipping any byte of a valid container either
// still decodes or errors — never panics — and a flip inside the
// payload of a packed app is caught by the dex verifier or decoder.
func TestDecodeBitFlips(t *testing.T) {
	a := New(sampleManifest(), sampleDex(t))
	a.Packed = true
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		_, _ = Decode(mut) // must not panic
	}
}
