package apk

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ppchecker/internal/dex"
)

// The SAPK container: magic, version, then length-prefixed named
// entries. Canonical entries are "AndroidManifest.xml" and
// "classes.dex"; packed apps replace classes.dex with "stub.bin"
// (the loader) and "payload.enc" (the enciphered dex).

const (
	containerMagic   = "SAPK"
	containerVersion = 1

	// EntryManifest is the manifest entry name.
	EntryManifest = "AndroidManifest.xml"
	// EntryDex is the bytecode entry name.
	EntryDex = "classes.dex"
	// EntryStub is the packer loader stub.
	EntryStub = "stub.bin"
	// EntryPayload is the enciphered dex payload.
	EntryPayload = "payload.enc"
)

// APK is an app package.
type APK struct {
	Manifest *Manifest
	Dex      *dex.Dex
	// Packed records whether the package was built (or loaded) in
	// packed form.
	Packed bool
}

// New assembles an APK value.
func New(m *Manifest, d *dex.Dex) *APK {
	return &APK{Manifest: m, Dex: d}
}

// Encode serializes the APK. When a.Packed is true the dex payload is
// enciphered behind a stub, simulating a packed app.
func Encode(a *APK) ([]byte, error) {
	manifestData, err := EncodeManifest(a.Manifest)
	if err != nil {
		return nil, err
	}
	dexData := dex.Encode(a.Dex)
	entries := []entry{{EntryManifest, manifestData}}
	if a.Packed {
		key := packKey(a.Manifest.Package)
		entries = append(entries,
			entry{EntryStub, stubFor(key)},
			entry{EntryPayload, xorCipher(dexData, key)},
		)
	} else {
		entries = append(entries, entry{EntryDex, dexData})
	}
	var b bytes.Buffer
	b.WriteString(containerMagic)
	b.WriteByte(containerVersion)
	writeUvarint(&b, uint64(len(entries)))
	for _, e := range entries {
		writeUvarint(&b, uint64(len(e.name)))
		b.WriteString(e.name)
		writeUvarint(&b, uint64(len(e.data)))
		b.Write(e.data)
	}
	return b.Bytes(), nil
}

type entry struct {
	name string
	data []byte
}

// Decode parses a serialized APK, unpacking a packed payload (the
// DexHunter step) when necessary.
func Decode(data []byte) (*APK, error) {
	if len(data) < 5 || string(data[:4]) != containerMagic {
		return nil, fmt.Errorf("apk: bad magic")
	}
	if data[4] != containerVersion {
		return nil, fmt.Errorf("apk: unsupported version %d", data[4])
	}
	pos := 5
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("apk: bad varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	n, err := readUvarint()
	if err != nil {
		return nil, err
	}
	entries := map[string][]byte{}
	for i := uint64(0); i < n; i++ {
		nameLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(nameLen) > len(data) {
			return nil, fmt.Errorf("apk: truncated entry name")
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		dataLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(dataLen) > len(data) {
			return nil, fmt.Errorf("apk: truncated entry %q", name)
		}
		entries[name] = data[pos : pos+int(dataLen)]
		pos += int(dataLen)
	}
	manifestData, ok := entries[EntryManifest]
	if !ok {
		return nil, fmt.Errorf("apk: missing %s", EntryManifest)
	}
	m, err := DecodeManifest(manifestData)
	if err != nil {
		return nil, err
	}
	a := &APK{Manifest: m}
	dexData, ok := entries[EntryDex]
	if !ok {
		// Packed app: recover the dex from the payload using the key
		// recovered from the stub (DexHunter's job).
		stub, okStub := entries[EntryStub]
		payload, okPay := entries[EntryPayload]
		if !okStub || !okPay {
			return nil, fmt.Errorf("apk: missing %s and no packed payload", EntryDex)
		}
		key, err := keyFromStub(stub)
		if err != nil {
			return nil, err
		}
		dexData = xorCipher(payload, key)
		a.Packed = true
	}
	d, err := dex.Decode(dexData)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	// Packed payloads come from untrusted packers; analyses assume a
	// structurally sound image, so gate on the verifier.
	if err := dex.Verify(d); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	a.Dex = d
	return a, nil
}

// packKey derives the packer key from the package name, as real
// packers derive per-app keys.
func packKey(pkg string) []byte {
	key := make([]byte, 16)
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		for _, c := range pkg {
			h = (h ^ uint32(c)) * 16777619
		}
		h = h*31 + uint32(i)
		key[i] = byte(h >> 16)
	}
	return key
}

const stubMagic = "STUB"

// stubFor builds the loader stub embedding the key.
func stubFor(key []byte) []byte {
	out := make([]byte, 0, len(stubMagic)+1+len(key))
	out = append(out, stubMagic...)
	out = append(out, byte(len(key)))
	return append(out, key...)
}

// keyFromStub recovers the cipher key from a loader stub.
func keyFromStub(stub []byte) ([]byte, error) {
	if len(stub) < len(stubMagic)+1 || string(stub[:4]) != stubMagic {
		return nil, fmt.Errorf("apk: unrecognized packer stub")
	}
	n := int(stub[4])
	if len(stub) < 5+n {
		return nil, fmt.Errorf("apk: truncated packer stub")
	}
	return stub[5 : 5+n], nil
}

// xorCipher applies the rolling XOR cipher (its own inverse).
func xorCipher(data, key []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ key[i%len(key)]
	}
	return out
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}
