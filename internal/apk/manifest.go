// Package apk models the app package: an XML manifest (package name,
// permissions, components), a binary container holding the manifest and
// the SDEX bytecode, and optional packing — an enciphered dex payload
// behind a loader stub — with the unpacker playing DexHunter's role.
package apk

import (
	"encoding/xml"
	"fmt"
)

// Manifest mirrors the parts of AndroidManifest.xml PPChecker reads.
type Manifest struct {
	XMLName     xml.Name     `xml:"manifest"`
	Package     string       `xml:"package,attr"`
	Permissions []Permission `xml:"uses-permission"`
	Application Application  `xml:"application"`
}

// Permission is one uses-permission entry.
type Permission struct {
	Name string `xml:"name,attr"`
}

// Application lists the app components.
type Application struct {
	Activities []Component `xml:"activity"`
	Services   []Component `xml:"service"`
	Receivers  []Component `xml:"receiver"`
	Providers  []Component `xml:"provider"`
}

// Component is one declared component.
type Component struct {
	Name     string         `xml:"name,attr"`
	Exported bool           `xml:"exported,attr,omitempty"`
	Filters  []IntentFilter `xml:"intent-filter"`
}

// IntentFilter carries the actions a component reacts to.
type IntentFilter struct {
	Actions []Action `xml:"action"`
}

// Action is one intent action string.
type Action struct {
	Name string `xml:"name,attr"`
}

// HasPermission reports whether the manifest requests the permission.
func (m *Manifest) HasPermission(name string) bool {
	for _, p := range m.Permissions {
		if p.Name == name {
			return true
		}
	}
	return false
}

// PermissionNames returns the requested permission names in order.
func (m *Manifest) PermissionNames() []string {
	out := make([]string, len(m.Permissions))
	for i, p := range m.Permissions {
		out[i] = p.Name
	}
	return out
}

// Components returns every component with its kind.
func (m *Manifest) Components() []DeclaredComponent {
	var out []DeclaredComponent
	add := func(kind ComponentKind, cs []Component) {
		for _, c := range cs {
			out = append(out, DeclaredComponent{Kind: kind, Component: c})
		}
	}
	add(KindActivity, m.Application.Activities)
	add(KindService, m.Application.Services)
	add(KindReceiver, m.Application.Receivers)
	add(KindProvider, m.Application.Providers)
	return out
}

// ComponentKind distinguishes the four Android component types.
type ComponentKind int

// Component kinds.
const (
	KindActivity ComponentKind = iota
	KindService
	KindReceiver
	KindProvider
)

var kindNames = [...]string{"activity", "service", "receiver", "provider"}

func (k ComponentKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// DeclaredComponent is a component with its kind.
type DeclaredComponent struct {
	Kind ComponentKind
	Component
}

// EncodeManifest serializes the manifest to XML.
func EncodeManifest(m *Manifest) ([]byte, error) {
	out, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("apk: encode manifest: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// DecodeManifest parses manifest XML.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("apk: decode manifest: %w", err)
	}
	if m.Package == "" {
		return nil, fmt.Errorf("apk: manifest has no package name")
	}
	return &m, nil
}
