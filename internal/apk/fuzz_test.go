package apk_test

import (
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/synth"
)

// FuzzAPKDecode: the container decoder (including the unpacking path)
// must handle arbitrary bytes — and every Corruptor fault class —
// without panicking, and anything it accepts must re-encode cleanly.
func FuzzAPKDecode(f *testing.F) {
	d, err := dex.Assemble(`
.class Lcom/example/fuzz/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		f.Fatal(err)
	}
	m := &apk.Manifest{
		Package:     "com.example.fuzz",
		Permissions: []apk.Permission{{Name: sensitive.PermFineLocation}},
		Application: apk.Application{Activities: []apk.Component{{Name: "com.example.fuzz.Main"}}},
	}
	for _, packed := range []bool{false, true} {
		a := apk.New(m, d)
		a.Packed = packed
		valid, err := apk.Encode(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		c := synth.NewCorruptor(2)
		for _, fault := range []synth.Fault{
			synth.FaultDexTruncated, synth.FaultDexBitFlip,
			synth.FaultPackGarbage, synth.FaultCallCycle,
		} {
			if seed, err := c.CorruptAPK(valid, fault); err == nil {
				f.Add(seed)
			}
		}
		for _, seed := range c.Mangle(valid, 16) {
			f.Add(seed)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("SAPK\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := apk.Decode(data)
		if err != nil {
			return
		}
		if _, err := apk.Encode(a); err != nil {
			t.Fatalf("decoded apk fails to re-encode: %v", err)
		}
	})
}
